//! Spherical Steiner systems `S(q^α + 1, q + 1, 3)` from finite geometries.
//!
//! Theorem 6.5 of the paper (Colbourn–Dinitz Example 3.23): `PGL₂(q^α)` acts
//! sharply 3-transitively on `PG(1, q^α) = F_{q^α} ∪ {∞}`, and the orbit of
//! the subline `S = F_q ∪ {∞}` is a Steiner `(q^α + 1, q + 1, 3)` system.
//!
//! **Construction.** Rather than enumerating `PGL₂(q^α)` and deduplicating
//! its orbit, we use sharp 3-transitivity directly: the unique block through
//! a triple `(P₀, P₁, P₂)` is `M(S)` where `M` is the unique Möbius map with
//! `M(0, 1, ∞) = (P₀, P₁, P₂)`. Any reordering of the triple changes `M` by
//! an element of `PGL₂(q)`, which fixes `S` setwise, so the block is
//! well-defined. Iterating over all triples and deduplicating yields the
//! whole system in `O((q^α+1)³ · q)` time — trivial at our scales.

use crate::SteinerSystem;
use std::collections::BTreeSet;
use symtensor_ff::{is_prime_power, Gf, Mobius, PPoint, ProjectiveLine};

/// Builds the spherical Steiner system `S(q² + 1, q + 1, 3)` used by the
/// paper's main partitioning scheme (`α = 2`).
///
/// # Panics
/// Panics if `q` is not a prime power.
pub fn spherical(q: u64) -> SteinerSystem {
    spherical_alpha(q, 2)
}

/// Builds `S(q^α + 1, q + 1, 3)` for a prime power `q` and `α ≥ 2`.
///
/// # Panics
/// Panics if `q` is not a prime power or `α < 2`, or if the field
/// `GF(q^α)` is too large for table-driven arithmetic.
pub fn spherical_alpha(q: u64, alpha: u32) -> SteinerSystem {
    assert!(is_prime_power(q), "q = {q} must be a prime power");
    assert!(alpha >= 2, "alpha must be at least 2 (alpha = 1 gives the trivial single block)");
    let big_q = q.checked_pow(alpha).expect("q^alpha overflow");
    let field = Gf::new(big_q);
    let line = ProjectiveLine::new(field);
    let f = line.field();

    // Base block: F_q ∪ {∞} inside PG(1, q^α).
    let mut base: Vec<PPoint> = f.subfield_elements(q).into_iter().map(PPoint::Finite).collect();
    base.push(PPoint::Infinity);

    let n = line.num_points();
    let mut blocks: BTreeSet<Vec<usize>> = BTreeSet::new();
    // The unique block through {P0, P1, P2} is M(base) for the unique M with
    // M(0,1,∞) = (P0,P1,P2). Skip triples already covered by a found block
    // to avoid redundant work.
    let mut covered = vec![false; n * n * n];
    let cover_idx = |a: usize, b: usize, c: usize| (a * n + b) * n + c;
    for i0 in 0..n {
        for i1 in i0 + 1..n {
            for i2 in i1 + 1..n {
                if covered[cover_idx(i0, i1, i2)] {
                    continue;
                }
                let m = Mobius::through_triple(
                    f,
                    line.point_at(i0),
                    line.point_at(i1),
                    line.point_at(i2),
                );
                let mut block: Vec<usize> =
                    base.iter().map(|&s| line.index_of(m.apply(f, s))).collect();
                block.sort_unstable();
                // Mark all triples of this block as covered.
                for a in 0..block.len() {
                    for b in a + 1..block.len() {
                        for c in b + 1..block.len() {
                            covered[cover_idx(block[a], block[b], block[c])] = true;
                        }
                    }
                }
                blocks.insert(block);
            }
        }
    }

    SteinerSystem::from_blocks(n, q as usize + 1, blocks.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::spherical_counts;

    fn check(q: u64) {
        let s = spherical(q);
        let qq = q as usize;
        assert_eq!(s.num_points(), qq * qq + 1);
        assert_eq!(s.block_size(), qq + 1);
        assert_eq!(s.num_blocks(), spherical_counts::num_processors(qq));
        s.verify().unwrap_or_else(|e| panic!("spherical({q}) failed verification: {e}"));
        // Lemma 6.4: every point in q(q+1) blocks.
        for blocks in s.point_to_blocks() {
            assert_eq!(blocks.len(), spherical_counts::blocks_through_element(qq));
        }
    }

    #[test]
    fn spherical_q2() {
        // S(5, 3, 3): 10 blocks on 5 points (all 3-subsets... no: q(q²+1)=10
        // = C(5,3) — indeed every triple is its own block when r = 3).
        check(2);
    }

    #[test]
    fn spherical_q3() {
        // S(10, 4, 3): the paper's Table 1 system, 30 blocks.
        check(3);
    }

    #[test]
    fn spherical_q4() {
        // S(17, 5, 3): 68 blocks.
        check(4);
    }

    #[test]
    fn spherical_q5() {
        // S(26, 6, 3): 130 blocks.
        check(5);
    }

    #[test]
    fn spherical_q7() {
        // S(50, 8, 3): 350 blocks.
        check(7);
    }

    #[test]
    fn pair_counts_match_lemma_6_3() {
        let s = spherical(3);
        // Every pair of points appears in exactly q+1 = 4 blocks.
        let n = s.num_points();
        for i in 0..n {
            for j in i + 1..n {
                let count = s
                    .blocks()
                    .iter()
                    .filter(|b| b.binary_search(&i).is_ok() && b.binary_search(&j).is_ok())
                    .count();
                assert_eq!(count, 4, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn two_blocks_share_at_most_two_points() {
        // If two distinct blocks shared 3 points, the Steiner property fails;
        // this is the fact that lets processors share at most 2 row blocks
        // (Section 7.2.2).
        let s = spherical(3);
        for (i, a) in s.blocks().iter().enumerate() {
            for b in s.blocks().iter().skip(i + 1) {
                let shared = a.iter().filter(|x| b.binary_search(x).is_ok()).count();
                assert!(shared <= 2);
            }
        }
    }

    #[test]
    fn alpha_3_system() {
        // S(2³+1, 3, 3) = S(9, 3, 3): every triple a block? No — r=3 means
        // blocks are triples and the system is all C(9,3)/1... num_blocks
        // formula: 9·8·7/(3·2·1) = 84 = C(9,3): indeed every 3-subset.
        let s = spherical_alpha(2, 3);
        assert_eq!(s.num_points(), 9);
        assert_eq!(s.num_blocks(), 84);
        s.verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "prime power")]
    fn non_prime_power_panics() {
        spherical(6);
    }
}

#[cfg(test)]
mod large_tests {
    use super::*;
    use crate::counting::spherical_counts;

    /// Larger prime-power cases exercising extension-field arithmetic
    /// (GF(64) for q = 8, GF(81) for q = 9) end to end.
    #[test]
    fn spherical_q8_and_q9() {
        for q in [8u64, 9] {
            let s = spherical(q);
            let qq = q as usize;
            assert_eq!(s.num_points(), qq * qq + 1);
            assert_eq!(s.num_blocks(), spherical_counts::num_processors(qq));
            s.verify().unwrap_or_else(|e| panic!("spherical({q}): {e}"));
        }
    }
}
