//! Counting formulas for Steiner `(n, r, 3)` systems.
//!
//! These are the paper's Lemmas 6.3 and 6.4 (both instances of
//! Colbourn–Dinitz Theorem 3.3): in a Steiner `(n, r, 3)` system,
//!
//! * any **pair** of points lies in exactly `(n−2)/(r−2)` blocks,
//! * any **single** point lies in exactly `(n−1)(n−2)/((r−1)(r−2))` blocks,
//! * the total number of blocks is `n(n−1)(n−2)/(r(r−1)(r−2))`.

/// Number of blocks containing a fixed pair of points: `(n−2)/(r−2)`
/// (Lemma 6.3, "λ₂").
pub fn blocks_through_pair(n: usize, r: usize) -> usize {
    assert!(r > 2 && (n - 2) % (r - 2) == 0, "S({n},{r},3) violates pair divisibility");
    (n - 2) / (r - 2)
}

/// Number of blocks containing a fixed point:
/// `(n−1)(n−2)/((r−1)(r−2))` (Lemma 6.4, "λ₁").
pub fn blocks_through_element(n: usize, r: usize) -> usize {
    let num = (n - 1) * (n - 2);
    let den = (r - 1) * (r - 2);
    assert!(num % den == 0, "S({n},{r},3) violates element divisibility");
    num / den
}

/// Total number of blocks: `n(n−1)(n−2)/(r(r−1)(r−2))`.
pub fn num_blocks(n: usize, r: usize) -> usize {
    let num = n * (n - 1) * (n - 2);
    let den = r * (r - 1) * (r - 2);
    assert!(num % den == 0, "S({n},{r},3) violates block-count divisibility");
    num / den
}

/// Specializations for the spherical family `S(q²+1, q+1, 3)` with
/// `P = q(q²+1)` processors, as simplified in Section 6 of the paper.
pub mod spherical_counts {
    /// Number of blocks (= processors): `q(q² + 1)`.
    pub fn num_processors(q: usize) -> usize {
        q * (q * q + 1)
    }

    /// Blocks through one point: `q(q + 1)`.
    pub fn blocks_through_element(q: usize) -> usize {
        q * (q + 1)
    }

    /// Blocks through a pair: `q + 1`.
    pub fn blocks_through_pair(q: usize) -> usize {
        q + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_formulas_match_spherical_specializations() {
        for q in [2usize, 3, 4, 5, 7, 8, 9, 11, 13] {
            let n = q * q + 1;
            let r = q + 1;
            assert_eq!(num_blocks(n, r), spherical_counts::num_processors(q));
            assert_eq!(blocks_through_element(n, r), spherical_counts::blocks_through_element(q));
            assert_eq!(blocks_through_pair(n, r), spherical_counts::blocks_through_pair(q));
        }
    }

    #[test]
    fn sqs8_counts() {
        assert_eq!(num_blocks(8, 4), 14);
        assert_eq!(blocks_through_element(8, 4), 7);
        assert_eq!(blocks_through_pair(8, 4), 3);
    }

    #[test]
    fn paper_example_q3() {
        // Section 6: m = 10, P = 30, each index in 12 blocks, each pair in 4.
        assert_eq!(spherical_counts::num_processors(3), 30);
        assert_eq!(spherical_counts::blocks_through_element(3), 12);
        assert_eq!(spherical_counts::blocks_through_pair(3), 4);
    }

    #[test]
    #[should_panic(expected = "divisibility")]
    fn invalid_parameters_panic() {
        blocks_through_pair(9, 4);
    }
}
