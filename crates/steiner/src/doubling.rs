//! The classical doubling construction for Steiner quadruple systems:
//! given `SQS(m)` and a one-factorization of `K_m`, build `SQS(2m)`.
//!
//! Points of the new system are two copies `X × {0, 1}` of the old point
//! set. Blocks are
//!
//! * both copies of every old block: `{(x,ε), (y,ε), (z,ε), (w,ε)}`,
//! * for every factor `F_t` of a one-factorization of `K_m` and every pair
//!   of edges `{x,y}, {u,v} ∈ F_t`: the "cross" block
//!   `{(x,0), (y,0), (u,1), (v,1)}` (including `{x,y} = {u,v}`).
//!
//! Block count check: `2·b(m) + (m−1)·(m/2)²`, e.g. `2·14 + 7·16 = 140 =
//! C(16,3)·…/… = 16·15·14/24` for `m = 8`. Steiner quadruple systems exist
//! exactly for `n ≡ 2, 4 (mod 6)` (Hanani); doubling reaches `8 → 16 → 32 →
//! …` from [`crate::sqs8`].
//!
//! Note: doubled systems generally do **not** satisfy the tetrahedral
//! partition's extra divisibility requirement `λ₂ | r(r−1)` (for `SQS(16)`:
//! `λ₂ = 7 ∤ 12`), so they serve the Steiner layer (and its verification
//! machinery), not the processor partition — exactly mirroring the paper's
//! remark that suitable partitions need specific families.

use crate::SteinerSystem;

/// A one-factorization of the complete graph `K_m` (`m` even): `m − 1`
/// perfect matchings partitioning all edges. This is the standard
/// round-robin ("circle") construction: fix point `m−1`, rotate the rest.
pub fn one_factorization(m: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(m >= 2 && m % 2 == 0, "one-factorization needs even m ≥ 2");
    let rounds = m - 1;
    let mut factors = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut factor = Vec::with_capacity(m / 2);
        // Fixed point pairs with `round`.
        factor.push((m - 1, round));
        for off in 1..m / 2 {
            let a = (round + off) % (m - 1);
            let b = (round + m - 1 - off) % (m - 1);
            factor.push((a.max(b), a.min(b)));
        }
        factors.push(factor);
    }
    factors
}

/// Doubles a Steiner quadruple system: `SQS(m) → SQS(2m)`. Points
/// `0..m` are copy 0, points `m..2m` are copy 1.
///
/// # Panics
/// Panics if the input is not an `SQS` (block size 4).
pub fn double_sqs(base: &SteinerSystem) -> SteinerSystem {
    assert_eq!(base.block_size(), 4, "doubling requires a quadruple system");
    let m = base.num_points();
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    // Type (a): both copies of every base block.
    for block in base.blocks() {
        blocks.push(block.clone());
        blocks.push(block.iter().map(|&x| x + m).collect());
    }
    // Type (b): cross blocks from aligned one-factorization edges.
    for factor in one_factorization(m) {
        for &(x, y) in &factor {
            for &(u, v) in &factor {
                blocks.push(vec![x, y, u + m, v + m]);
            }
        }
    }
    SteinerSystem::from_blocks(2 * m, 4, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counting, sqs8};

    #[test]
    fn round_robin_is_a_one_factorization() {
        for m in [4usize, 6, 8, 10, 14] {
            let factors = one_factorization(m);
            assert_eq!(factors.len(), m - 1);
            let mut seen = std::collections::HashSet::new();
            for factor in &factors {
                assert_eq!(factor.len(), m / 2);
                let mut covered = vec![false; m];
                for &(a, b) in factor {
                    assert_ne!(a, b);
                    assert!(!covered[a] && !covered[b], "vertex repeated in a factor");
                    covered[a] = true;
                    covered[b] = true;
                    assert!(seen.insert((a.max(b), a.min(b))), "edge repeated");
                }
                assert!(covered.iter().all(|&c| c), "factor is not perfect");
            }
            assert_eq!(seen.len(), m * (m - 1) / 2, "all edges covered");
        }
    }

    #[test]
    fn sqs16_from_doubling_verifies() {
        let sqs16 = double_sqs(&sqs8());
        assert_eq!(sqs16.num_points(), 16);
        assert_eq!(sqs16.num_blocks(), counting::num_blocks(16, 4));
        assert_eq!(sqs16.num_blocks(), 140);
        sqs16.verify().expect("SQS(16) must verify");
    }

    #[test]
    fn sqs32_from_double_doubling_verifies() {
        let sqs32 = double_sqs(&double_sqs(&sqs8()));
        assert_eq!(sqs32.num_points(), 32);
        assert_eq!(sqs32.num_blocks(), counting::num_blocks(32, 4));
        sqs32.verify().expect("SQS(32) must verify");
    }

    #[test]
    fn doubled_counting_lemmas_hold() {
        let sqs16 = double_sqs(&sqs8());
        // Lemma 6.4: each point in (15·14)/(3·2) = 35 blocks.
        for q in sqs16.point_to_blocks() {
            assert_eq!(q.len(), counting::blocks_through_element(16, 4));
        }
    }

    #[test]
    #[should_panic(expected = "quadruple")]
    fn doubling_rejects_non_quadruple_systems() {
        let triple = crate::spherical(2); // S(5, 3, 3)
        double_sqs(&triple);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn one_factorization_rejects_odd() {
        one_factorization(7);
    }
}
