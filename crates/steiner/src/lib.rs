#![warn(missing_docs)]
//! Steiner `(n, r, 3)` systems for tetrahedral block partitioning.
//!
//! A Steiner `(n, r, s)` system is a collection of `r`-subsets ("blocks") of
//! `{0, …, n−1}` such that every `s`-subset lies in exactly one block
//! (Definition 6.1 of the paper). The paper needs `s = 3`:
//!
//! * the infinite spherical family `(q² + 1, q + 1, 3)` built from
//!   `PGL₂(q²)` acting on `PG(1, q²)` ([`spherical`], Theorem 6.5), used for
//!   the main algorithm with `P = q(q² + 1)` processors;
//! * the Boolean quadruple system `SQS(8) = S(8, 4, 3)` ([`sqs8`]) used in
//!   the paper's Appendix A example (`m = 8`, `P = 14`);
//! * the general `(q^α + 1, q + 1, 3)` family ([`spherical_alpha`]).
//!
//! [`SteinerSystem::verify`] checks the defining property exhaustively, and
//! the counting helpers mirror the paper's Lemmas 6.3 and 6.4.

pub mod counting;
pub mod doubling;
pub mod plane;
pub mod spherical;

use std::collections::HashMap;

pub use counting::{blocks_through_element, blocks_through_pair, num_blocks};
pub use doubling::{double_sqs, one_factorization};
pub use plane::{bose_triple_system, projective_plane, Steiner2};
pub use spherical::{spherical, spherical_alpha};

/// A Steiner `(n, r, 3)` system: blocks of size `r` on points `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SteinerSystem {
    n: usize,
    r: usize,
    blocks: Vec<Vec<usize>>,
}

/// Errors returned by [`SteinerSystem::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SteinerError {
    /// A block has the wrong size or out-of-range / duplicated points.
    MalformedBlock {
        /// Index of the offending block.
        block_index: usize,
    },
    /// A 3-subset is covered `count` times instead of exactly once.
    BadCoverage {
        /// The offending (sorted) triple.
        triple: [usize; 3],
        /// How many blocks contain it.
        count: usize,
    },
    /// The number of blocks disagrees with the counting formula.
    WrongBlockCount {
        /// `n(n−1)(n−2)/(r(r−1)(r−2))`.
        expected: usize,
        /// Blocks actually present.
        actual: usize,
    },
}

impl std::fmt::Display for SteinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteinerError::MalformedBlock { block_index } => {
                write!(f, "block {block_index} is malformed")
            }
            SteinerError::BadCoverage { triple, count } => {
                write!(f, "triple {triple:?} covered {count} times (expected 1)")
            }
            SteinerError::WrongBlockCount { expected, actual } => {
                write!(f, "expected {expected} blocks, found {actual}")
            }
        }
    }
}

impl std::error::Error for SteinerError {}

impl SteinerSystem {
    /// Wraps a block list as a Steiner system **without** verifying the
    /// covering property; blocks are sorted canonically. Call
    /// [`SteinerSystem::verify`] to check.
    pub fn from_blocks(n: usize, r: usize, mut blocks: Vec<Vec<usize>>) -> Self {
        for b in &mut blocks {
            b.sort_unstable();
        }
        blocks.sort();
        SteinerSystem { n, r, blocks }
    }

    /// Number of points `n`.
    pub fn num_points(&self) -> usize {
        self.n
    }

    /// Block size `r`.
    pub fn block_size(&self) -> usize {
        self.r
    }

    /// The blocks, each sorted ascending; the block list itself is sorted.
    pub fn blocks(&self) -> &[Vec<usize>] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// For each point, the (sorted) list of blocks containing it. The sets
    /// `Q_i` of the paper's Table 2 are exactly these lists.
    pub fn point_to_blocks(&self) -> Vec<Vec<usize>> {
        let mut map = vec![Vec::new(); self.n];
        for (bi, block) in self.blocks.iter().enumerate() {
            for &pt in block {
                map[pt].push(bi);
            }
        }
        map
    }

    /// The block index containing a given (distinct) triple, if any.
    pub fn block_containing(&self, mut triple: [usize; 3]) -> Option<usize> {
        triple.sort_unstable();
        self.blocks.iter().position(|b| triple.iter().all(|t| b.binary_search(t).is_ok()))
    }

    /// Exhaustively verifies the Steiner property: every 3-subset of the
    /// point set is contained in exactly one block.
    pub fn verify(&self) -> Result<(), SteinerError> {
        for (bi, block) in self.blocks.iter().enumerate() {
            let ok = block.len() == self.r
                && block.windows(2).all(|w| w[0] < w[1])
                && block.iter().all(|&p| p < self.n);
            if !ok {
                return Err(SteinerError::MalformedBlock { block_index: bi });
            }
        }
        let expected = num_blocks(self.n, self.r);
        if self.blocks.len() != expected {
            return Err(SteinerError::WrongBlockCount { expected, actual: self.blocks.len() });
        }
        let mut cover: HashMap<[usize; 3], usize> = HashMap::new();
        for block in &self.blocks {
            for a in 0..block.len() {
                for b in a + 1..block.len() {
                    for c in b + 1..block.len() {
                        *cover.entry([block[a], block[b], block[c]]).or_insert(0) += 1;
                    }
                }
            }
        }
        for i in 0..self.n {
            for j in i + 1..self.n {
                for k in j + 1..self.n {
                    let count = cover.get(&[i, j, k]).copied().unwrap_or(0);
                    if count != 1 {
                        return Err(SteinerError::BadCoverage { triple: [i, j, k], count });
                    }
                }
            }
        }
        Ok(())
    }
}

/// The Boolean Steiner quadruple system `SQS(8) = S(8, 4, 3)`.
///
/// Points are the vectors of `F₂³` (encoded `0..8`); blocks are the 4-subsets
/// whose XOR is zero (affine planes of `AG(3, 2)`). With 1-based labels this
/// is exactly the system of the paper's Table 3.
pub fn sqs8() -> SteinerSystem {
    let mut blocks = Vec::new();
    for a in 0..8usize {
        for b in a + 1..8 {
            for c in b + 1..8 {
                let d = a ^ b ^ c;
                if d > c {
                    blocks.push(vec![a, b, c, d]);
                }
            }
        }
    }
    SteinerSystem::from_blocks(8, 4, blocks)
}

/// Returns true if `(n, r)` satisfies Wilson's necessary divisibility
/// conditions for a Steiner `(n, r, 3)` system (Theorem 6.2):
/// `r−2 | n−2`, `(r−1)(r−2) | (n−1)(n−2)` and
/// `r(r−1)(r−2) | n(n−1)(n−2)`.
pub fn wilson_divisibility(n: usize, r: usize) -> bool {
    if r < 3 || n < r {
        return false;
    }
    (n - 2) % (r - 2) == 0
        && ((n - 1) * (n - 2)) % ((r - 1) * (r - 2)) == 0
        && (n * (n - 1) * (n - 2)) % (r * (r - 1) * (r - 2)) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqs8_is_a_steiner_system() {
        let s = sqs8();
        assert_eq!(s.num_points(), 8);
        assert_eq!(s.block_size(), 4);
        assert_eq!(s.num_blocks(), 14);
        s.verify().expect("SQS(8) must verify");
    }

    #[test]
    fn sqs8_matches_paper_table3() {
        // Table 3 lists these R_p sets (1-based); our construction must give
        // the same system (0-based).
        let paper: Vec<Vec<usize>> = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 5, 6],
            vec![1, 2, 7, 8],
            vec![1, 3, 5, 7],
            vec![1, 3, 6, 8],
            vec![1, 4, 5, 8],
            vec![1, 4, 6, 7],
            vec![2, 3, 5, 8],
            vec![2, 3, 6, 7],
            vec![2, 4, 5, 7],
            vec![2, 4, 6, 8],
            vec![3, 4, 5, 6],
            vec![3, 4, 7, 8],
            vec![5, 6, 7, 8],
        ];
        let expect: Vec<Vec<usize>> =
            paper.into_iter().map(|b| b.into_iter().map(|x| x - 1).collect()).collect();
        let sys = SteinerSystem::from_blocks(8, 4, expect);
        assert_eq!(sqs8(), sys);
    }

    #[test]
    fn sqs8_point_to_blocks_counts() {
        // Each point lies in (n-1)(n-2)/((r-1)(r-2)) = 7 blocks (Lemma 6.4).
        let s = sqs8();
        for q in s.point_to_blocks() {
            assert_eq!(q.len(), 7);
        }
    }

    #[test]
    fn block_containing_finds_unique_blocks() {
        let s = sqs8();
        // {0,1,2} lies in {0,1,2,3}.
        let bi = s.block_containing([2, 0, 1]).unwrap();
        assert_eq!(s.blocks()[bi], vec![0, 1, 2, 3]);
    }

    #[test]
    fn verify_detects_bad_coverage() {
        // Remove one block from SQS(8): its triples are now uncovered.
        let s = sqs8();
        let mut blocks = s.blocks().to_vec();
        blocks.pop();
        let broken = SteinerSystem::from_blocks(8, 4, blocks);
        assert!(matches!(
            broken.verify(),
            Err(SteinerError::WrongBlockCount { .. }) | Err(SteinerError::BadCoverage { .. })
        ));
    }

    #[test]
    fn verify_detects_duplicate_blocks() {
        let s = sqs8();
        let mut blocks = s.blocks().to_vec();
        let last = blocks.last().unwrap().clone();
        blocks[0] = last;
        let broken = SteinerSystem::from_blocks(8, 4, blocks);
        assert!(broken.verify().is_err());
    }

    #[test]
    fn verify_detects_malformed_block() {
        let broken = SteinerSystem::from_blocks(8, 4, vec![vec![0, 1, 2]]);
        assert!(matches!(
            broken.verify(),
            Err(SteinerError::MalformedBlock { .. }) | Err(SteinerError::WrongBlockCount { .. })
        ));
    }

    #[test]
    fn wilson_conditions() {
        // Spherical parameters always satisfy the conditions.
        for q in [2usize, 3, 4, 5, 7, 8, 9] {
            assert!(wilson_divisibility(q * q + 1, q + 1), "q={q}");
        }
        // SQS(8).
        assert!(wilson_divisibility(8, 4));
        // A failing example: S(9, 4, 3) fails r-2 | n-2 (2 | 7 false).
        assert!(!wilson_divisibility(9, 4));
    }
}
