//! Regenerates the paper's **Table 3** (Appendix A): processor and row-block
//! sets of the tetrahedral partition from the Boolean Steiner system
//! S(8, 4, 3), m = 8 and P = 14.
//!
//! Unlike Tables 1–2, the SQS(8) construction here (4-subsets of F₂³ with
//! zero XOR) reproduces the paper's R_p sets **exactly**, not just up to
//! isomorphism; the N_p/D_p assignments may differ since any matching
//! satisfying the compatibility constraints is valid.

use symtensor_cli::{render_processor_table, render_rowblock_table};
use symtensor_parallel::TetraPartition;
use symtensor_steiner::sqs8;

fn main() {
    let system = sqs8();
    system.verify().expect("SQS(8) verification");

    // Check the R_p sets against the paper's Table 3 verbatim.
    let paper_rp: Vec<Vec<usize>> = vec![
        vec![1, 2, 3, 4],
        vec![1, 2, 5, 6],
        vec![1, 2, 7, 8],
        vec![1, 3, 5, 7],
        vec![1, 3, 6, 8],
        vec![1, 4, 5, 8],
        vec![1, 4, 6, 7],
        vec![2, 3, 5, 8],
        vec![2, 3, 6, 7],
        vec![2, 4, 5, 7],
        vec![2, 4, 6, 8],
        vec![3, 4, 5, 6],
        vec![3, 4, 7, 8],
        vec![5, 6, 7, 8],
    ];
    let ours: Vec<Vec<usize>> =
        system.blocks().iter().map(|b| b.iter().map(|&x| x + 1).collect()).collect();
    assert_eq!(ours, paper_rp, "R_p sets must match the paper's Table 3 exactly");

    let part = TetraPartition::new(system, 56).expect("partition");
    println!(
        "Table 3: tetrahedral block partition for m = {} and P = {} (Boolean SQS(8))",
        part.num_row_blocks(),
        part.num_procs()
    );
    println!("R_p sets match the paper's Table 3 exactly (verified).");
    println!();
    print!("{}", render_processor_table(&part));
    println!();
    print!("{}", render_rowblock_table(&part));
    println!();
    println!(
        "Invariants: |Q_i| = {} (paper: 7), |N_p| = {} (paper: 4), {} central blocks.",
        part.lambda1(),
        part.n_set(0).len(),
        (0..14).filter(|&p| part.d_set(p).is_some()).count()
    );
    part.verify().expect("partition invariants");
    println!("Partition verified.");
}
