//! Regenerates the paper's **Figure 1**: the sequence of point-to-point
//! communication steps for the m = 8, P = 14 tetrahedral partition of
//! Table 3. The paper shows 12 steps — fewer than P − 1 = 13 — in which
//! every processor sends exactly one message and receives exactly one.

use symtensor_parallel::schedule::shared_row_blocks;
use symtensor_parallel::{CommSchedule, TetraPartition};
use symtensor_steiner::sqs8;

fn main() {
    let part = TetraPartition::new(sqs8(), 56).expect("partition");
    let schedule = CommSchedule::build(&part);
    println!(
        "Figure 1: {} communication steps for all data transfers among {} processors",
        schedule.num_rounds(),
        part.num_procs()
    );
    println!("(paper: 12 steps, fewer than P - 1 = 13). i->j means processor i sends to j.");
    println!();
    for (r, round) in schedule.rounds().iter().enumerate() {
        let mut pairs: Vec<String> =
            round.iter().map(|&(s, d)| format!("{:>2}->{:<2}", s + 1, d + 1)).collect();
        pairs.sort();
        println!("step {:>2}:  {}", r + 1, pairs.join("  "));
    }
    println!();

    // Verify the Figure 1 properties.
    assert_eq!(schedule.num_rounds(), 12);
    for round in schedule.rounds() {
        assert_eq!(round.len(), 14, "every processor active each step");
        let mut senders = [false; 14];
        let mut receivers = [false; 14];
        for &(s, d) in round {
            assert!(!senders[s] && !receivers[d]);
            senders[s] = true;
            receivers[d] = true;
        }
    }
    // Every sharing pair covered exactly once.
    let mut covered = std::collections::HashSet::new();
    for round in schedule.rounds() {
        for &e in round {
            assert!(covered.insert(e));
        }
    }
    for a in 0..14 {
        for b in 0..14 {
            if a != b {
                let shares = !shared_row_blocks(&part, a, b).is_empty();
                assert_eq!(shares, covered.contains(&(a, b)));
            }
        }
    }
    println!("Verified: each step is a perfect pairing (one send + one receive per");
    println!("processor) and every sharing pair of processors is covered exactly once.");
}
