//! The concurrency-hygiene lint gate.
//!
//! Usage: `lint [--root PATH]`
//!
//! Scans every `.rs` file under `<root>/crates/*/src` with
//! `symtensor_check::lint_workspace` and prints each finding as
//! `file:line: [rule] excerpt`. Exits 0 when the tree is clean and 1
//! when any rule fires, so CI can gate on it directly. Without
//! `--root`, the workspace root is found by walking up from the current
//! directory to the nearest ancestor containing a `crates/` directory.
//!
//! The rules (ordering justifications, no panic paths in serving code,
//! no raw atomics outside the `sync.rs` façades, no stray clock reads
//! in record paths) are documented in `symtensor_check::lint`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: lint [--root PATH]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("lint: no workspace root found (no ancestor with a crates/ directory)");
        return ExitCode::from(2);
    };

    match symtensor_check::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
