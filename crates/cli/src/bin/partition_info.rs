//! Inspection tool: builds the tetrahedral partition for a given `q` and
//! `n`, verifies every invariant and prints its statistics.
//!
//! Usage: `partition_info [q] [n]` (defaults: q = 3, n = padded minimal).

use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{bounds, CommSchedule, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let q: u64 = args.get(1).map(|s| s.parse().expect("q must be a number")).unwrap_or(3);
    let system = spherical(q);
    system.verify().expect("Steiner verification");
    let n_default = TetraPartition::padded_dim(&system, 1);
    let n: usize = args.get(2).map(|s| s.parse().expect("n must be a number")).unwrap_or(n_default);

    let qq = q as usize;
    let part = match TetraPartition::new(system, n) {
        Ok(part) => part,
        Err(e) => {
            eprintln!("cannot partition n = {n} with q = {q}: {e}");
            eprintln!(
                "hint: n must be a multiple of m = {}; minimal exact n is {n_default}",
                qq * qq + 1
            );
            std::process::exit(2);
        }
    };
    part.verify().expect("partition invariants");

    let p = part.num_procs();
    println!("tetrahedral partition: q = {q} (prime power), n = {n}");
    println!("  processors P = q(q²+1)          = {p}");
    println!("  row blocks m = q²+1             = {}", part.num_row_blocks());
    println!("  block size b = n/m              = {}", part.block_size());
    println!("  λ₁ (procs per row block)        = {}", part.lambda1());
    println!("  λ₂ (procs per row-block pair)   = {}", part.lambda2());
    println!("  |R_p| = q+1                     = {}", part.r_set(0).len());
    println!("  |N_p| = q                       = {}", part.n_set(0).len());
    println!(
        "  central blocks assigned          = {} of {p} processors",
        (0..p).filter(|&r| part.d_set(r).is_some()).count()
    );
    let max_tensor = (0..p).map(|r| part.tensor_words(r)).max().unwrap();
    println!(
        "  tensor words/proc (max)          = {} (n³/6P = {:.0})",
        max_tensor,
        (n as f64).powi(3) / (6.0 * p as f64)
    );
    println!("  vector words/proc                = {}", part.vector_words(0));
    let max_work = (0..p).map(|r| part.ternary_mults(r)).max().unwrap();
    println!(
        "  ternary mults/proc (max)         = {} (n³/2P = {:.0})",
        max_work,
        bounds::comp_cost_leading(n, p)
    );
    println!();
    println!("communication per STTSV (words, send = receive per processor):");
    println!("  scheduled point-to-point         = {}", bounds::scheduled_words_total(n, qq));
    println!("  padded All-to-All                = {}", bounds::alltoall_words_total(n, qq));
    println!("  Theorem 5.2 lower bound          = {:.1}", bounds::lower_bound_words(n, p));
    let schedule = CommSchedule::build(&part);
    println!(
        "  schedule rounds                  = {} (formula {}, vs P−1 = {})",
        schedule.num_rounds(),
        spherical_round_count(qq),
        p - 1
    );
    println!();
    println!("all invariants verified.");
}
