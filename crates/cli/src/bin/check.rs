//! The concurrency checker: explores every model, runs the race demo and
//! the ordering-mutation sweep, lints the workspace, and writes the
//! combined `symtensor-check-v1` artifact.
//!
//! Usage: `check [--out PATH] [--no-prune] [--preemption-bound N]
//!               [--max-execs N] [--skip-mutation] [--root PATH]`
//!
//! Exits 0 only when the run is clean: every model passes exhaustively,
//! the deliberate race is detected, no mutation survives, and the lint
//! gate is empty. The artifact is validated against the shared
//! `obs::schema` contract before it is written, like every other JSON
//! document the workspace emits.

use std::path::PathBuf;
use std::process::ExitCode;

use symtensor_check::{lint_workspace, models, sweep, Config};
use symtensor_obs::{json, schema};

struct Options {
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    cfg: Config,
    mutation: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { out: None, root: None, cfg: Config::default(), mutation: true };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out = Some(args.next().ok_or("--out needs a path")?.into()),
            "--root" => opts.root = Some(args.next().ok_or("--root needs a path")?.into()),
            "--no-prune" => opts.cfg.prune = false,
            "--skip-mutation" => opts.mutation = false,
            "--preemption-bound" => {
                let n = args.next().ok_or("--preemption-bound needs a number")?;
                opts.cfg.preemption_bound =
                    Some(n.parse().map_err(|_| format!("bad preemption bound `{n}`"))?);
            }
            "--max-execs" => {
                let n = args.next().ok_or("--max-execs needs a number")?;
                opts.cfg.max_execs = n.parse().map_err(|_| format!("bad exec cap `{n}`"))?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = symtensor_check::CheckReport::default();

    println!("== model exploration ==");
    for def in models::defs() {
        let outcome = def.explore(&opts.cfg);
        println!(
            "  {:<12} {:>7} interleavings  {:>7} pruned  {:>6} ms  {}",
            outcome.name,
            outcome.interleavings,
            outcome.pruned,
            outcome.wall_ms,
            match &outcome.violation {
                None if outcome.capped => "PASS (capped — not exhaustive)",
                None => "PASS (exhaustive)",
                Some(v) => {
                    println!("    violation: {v}");
                    "FAIL"
                }
            },
        );
        report.models.push(outcome);
    }

    println!("== race detector liveness ==");
    let demo = models::race_demo(&opts.cfg);
    println!(
        "  {:<12} {}",
        demo.name,
        if demo.violation.is_some() { "race detected (as designed)" } else { "RACE MISSED" },
    );
    report.race_demo = Some(demo);

    if opts.mutation {
        println!("== ordering mutation sweep ==");
        let sweep = sweep(&models::defs(), &opts.cfg);
        for run in &sweep.runs {
            println!(
                "  {:<12} weaken {:<18} {}",
                run.model,
                run.slot,
                if run.killed { "killed" } else { "SURVIVED" },
            );
        }
        println!(
            "  kill rate: {}/{} = {:.0}%",
            sweep.killed(),
            sweep.total(),
            sweep.kill_rate() * 100.0
        );
        report.mutation = Some(sweep);
    }

    println!("== lint gate ==");
    match opts.root.or_else(find_root) {
        Some(root) => match lint_workspace(&root) {
            Ok(findings) => {
                for f in &findings {
                    println!("  {f}");
                }
                println!("  {} finding(s)", findings.len());
                report.lint = findings;
            }
            Err(e) => {
                eprintln!("check: lint scan failed: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            eprintln!("check: no workspace root found; pass --root");
            return ExitCode::from(2);
        }
    }

    let rendered = report.to_json_string();
    let doc = match json::parse(&rendered) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("check: emitted report is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    match schema::validate(&doc) {
        Ok(schema::ArtifactKind::Check) => {}
        Ok(kind) => {
            eprintln!("check: report validated as unexpected kind `{kind}`");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("check: report violates the symtensor-check-v1 contract: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("check: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }

    if report.clean() {
        println!("check: clean");
        ExitCode::SUCCESS
    } else {
        println!("check: FAILED");
        ExitCode::FAILURE
    }
}
