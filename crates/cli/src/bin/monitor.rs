//! Live monitor for the batched serving path: a `top`-style refreshing
//! rank×phase view of a serving run, driven by the lock-free telemetry
//! plane.
//!
//! Usage:
//! `monitor [--q Q] [--requests R] [--batch B] [--threads T]
//!          [--interval-ms MS] [--frames N] [--plain]
//!          [--chaos] [--seed S] [--drop-prob P]
//!          [--slo-budget-us US] [--out telemetry.json]`
//!
//! The serving workload (q ∈ {2, 3}, `P = q(q²+1)` ranks) loops in a
//! background thread while the foreground samples the plane every
//! `--interval-ms` and redraws the table. `--frames N --plain` renders
//! exactly N frames without ANSI clears — the snapshot-testable mode CI
//! uses. `--chaos` serves under a seeded fault plan with retry/degrade
//! recovery and an SLO burn-rate evaluator between batches, so alert
//! lines appear in the view. `--out` writes the scraped series as a
//! `symtensor-telemetry-v1` artifact, validated before it is written.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use symtensor_core::generate::random_symmetric;
use symtensor_mpsim::FaultPlan;
use symtensor_obs::telemetry_json;
use symtensor_parallel::{
    bounds, parallel_sttsv_serve_chaos_with, parallel_sttsv_serve_with, ChaosPolicy, Mode,
    ServeRequest, TetraPartition,
};
use symtensor_steiner::spherical;
use symtensor_telemetry::{
    render_table, sample_plane, ScrapeConfig, Scraper, SloBurnRate, TelemetryPlane,
};

struct Options {
    q: u64,
    requests: usize,
    batch: usize,
    threads: usize,
    interval: Duration,
    frames: Option<usize>,
    plain: bool,
    chaos: bool,
    seed: u64,
    drop_prob: f64,
    slo_budget: Duration,
    out: Option<String>,
}

fn parse_args() -> Options {
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: monitor [--q Q] [--requests R] [--batch B] [--threads T] \
             [--interval-ms MS] [--frames N] [--plain] [--chaos] [--seed S] \
             [--drop-prob P] [--slo-budget-us US] [--out telemetry.json]"
        );
        std::process::exit(2);
    };
    let mut opts = Options {
        q: 2,
        requests: 8,
        batch: 2,
        threads: 1,
        interval: Duration::from_millis(50),
        frames: None,
        plain: false,
        chaos: false,
        seed: 2025,
        drop_prob: 0.01,
        slo_budget: Duration::from_micros(500),
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--q" => match it.next().and_then(|v| v.parse().ok()) {
                Some(q) if (2..=3).contains(&q) => opts.q = q,
                _ => fail("--q expects 2 or 3"),
            },
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0 => opts.requests = r,
                _ => fail("--requests expects a positive integer"),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(b) if b > 0 => opts.batch = b,
                _ => fail("--batch expects a positive integer"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => opts.threads = t,
                _ => fail("--threads expects a positive integer"),
            },
            "--interval-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms > 0u64 => opts.interval = Duration::from_millis(ms),
                _ => fail("--interval-ms expects a positive integer"),
            },
            "--frames" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.frames = Some(n),
                _ => fail("--frames expects a positive integer"),
            },
            "--plain" => opts.plain = true,
            "--chaos" => opts.chaos = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => fail("--seed expects an unsigned integer"),
            },
            "--drop-prob" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => opts.drop_prob = p,
                _ => fail("--drop-prob expects a probability in [0, 1]"),
            },
            "--slo-budget-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(us) if us > 0u64 => opts.slo_budget = Duration::from_micros(us),
                _ => fail("--slo-budget-us expects a positive integer"),
            },
            "--out" => match it.next() {
                Some(path) => opts.out = Some(path),
                None => fail("--out needs a path"),
            },
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let qs = opts.q as usize;
    let n = (qs * qs + 1) * qs * (qs + 1); // block size divisible by P
    let part = TetraPartition::new(spherical(opts.q), n).expect("spherical partition");
    let ranks = part.num_procs();
    let mut rng = StdRng::seed_from_u64(1015);
    let tensor = random_symmetric(n, &mut rng);
    let requests: Vec<ServeRequest> = (0..opts.requests)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + 5 * v) as f64 * 0.017).sin()).collect();
            ServeRequest::new(v as u64, x)
        })
        .collect();

    let plane = Arc::new(TelemetryPlane::new(ranks));
    // The per-rank budget the scraper reconciles live word counts
    // against: two exchange phases per served vector.
    let budget = 2 * bounds::scheduled_words_per_vector(n, qs) as u64;
    let cfg =
        ScrapeConfig::default().with_interval(opts.interval).with_budget_words_per_vector(budget);

    // Serving loops in the background until the monitor has its frames.
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let plane = plane.clone();
        let stop = stop.clone();
        let tensor = tensor.clone();
        let part = part.clone();
        let opts_chaos = opts.chaos;
        let seed = opts.seed;
        let drop_prob = opts.drop_prob;
        let threads = opts.threads;
        let batch = opts.batch;
        let slo_budget = opts.slo_budget;
        std::thread::spawn(move || {
            let mut slo = SloBurnRate::serve_e2e(slo_budget.as_nanos() as u64);
            let policy = ChaosPolicy {
                plan: FaultPlan::seeded(seed).with_drop_prob(drop_prob),
                max_retries: 2,
                backoff: Duration::from_millis(5),
                recv_timeout: Duration::from_millis(250),
            };
            // Injected rank failures are caught and retried by the chaos
            // serving layer; keep the default hook from spamming
            // backtraces over the monitor view.
            if opts_chaos {
                std::panic::set_hook(Box::new(|_| {}));
            }
            let mut passes = 0u64;
            while !stop.load(Ordering::Acquire) {
                if opts_chaos {
                    parallel_sttsv_serve_chaos_with(
                        &tensor,
                        &part,
                        &requests,
                        Mode::Scheduled,
                        threads,
                        batch,
                        &policy,
                        Some(&plane),
                        Some(&mut slo),
                    )
                    .expect("chaos serving run");
                } else {
                    parallel_sttsv_serve_with(
                        &tensor,
                        &part,
                        &requests,
                        Mode::Scheduled,
                        threads,
                        batch,
                        Some(&plane),
                    )
                    .expect("serving run");
                }
                passes += 1;
            }
            passes
        })
    };

    let mut scraper = Scraper::new(plane.clone(), cfg.clone());
    let mut frame = 0usize;
    loop {
        std::thread::sleep(opts.interval);
        let snap = sample_plane(&plane, &cfg);
        if !opts.plain {
            // Clear screen + home, like top.
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_table(&snap));
        if opts.plain {
            println!("--- frame {frame} ---");
        }
        scraper.sample();
        frame += 1;
        if let Some(frames) = opts.frames {
            if frame >= frames {
                break;
            }
        }
    }
    stop.store(true, Ordering::Release);
    let passes = worker.join().expect("serving worker panicked");
    scraper.sample(); // final, completed-run state
    let series = scraper.into_series();
    let last = series.last().expect("at least one sample");
    println!(
        "serving passes: {passes}; words sent: {}; alerts: {}",
        last.derived.total_words_sent,
        series.alerts.len()
    );

    if let Some(path) = &opts.out {
        let doc = telemetry_json(&series);
        let kind = symtensor_obs::validate(&doc)
            .unwrap_or_else(|e| panic!("emitted telemetry artifact is invalid: {e}"));
        assert_eq!(kind, symtensor_obs::ArtifactKind::Telemetry);
        std::fs::write(path, doc.to_string_pretty()).expect("write telemetry artifact");
        println!("telemetry artifact ({kind}) written to {path}");
    }
}
