//! Post-mortem dump inspector.
//!
//! Usage: `postmortem <dump.json> [--chrome out.json]`
//!
//! Reads a `symtensor-postmortem-v1` crash dump (as written on rank
//! failure by the test harness or any caller of
//! `symtensor_obs::postmortem_json`), validates it against the shared
//! artifact schema, and prints the human summary: which rank died where,
//! the panic message, per-rank cost tallies up to the abort, and each
//! surviving rank's flight-recorder window stats. `--chrome` extracts the
//! embedded Chrome trace (failing rank highlighted, unterminated phases
//! flagged) for `ui.perfetto.dev`.

use symtensor_obs::json::{self, Value};
use symtensor_obs::{validate, ArtifactKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dump_path: Option<String> = None;
    let mut chrome_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chrome" => match it.next() {
                Some(path) => chrome_path = Some(path.clone()),
                None => usage("--chrome requires an output path"),
            },
            other if dump_path.is_none() => dump_path = Some(other.to_string()),
            other => usage(&format!("unexpected argument '{other}'")),
        }
    }
    let dump_path = dump_path.unwrap_or_else(|| usage("a dump path is required"));
    let text = std::fs::read_to_string(&dump_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {dump_path}: {e}");
        std::process::exit(1);
    });
    let doc = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {dump_path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    match validate(&doc) {
        Ok(ArtifactKind::Postmortem) => {}
        Ok(other) => {
            eprintln!("error: {dump_path} is a {other} artifact, not a post-mortem dump");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {dump_path} failed schema validation: {e}");
            std::process::exit(1);
        }
    }

    let failing = doc.get("failing_rank").and_then(Value::as_u64).unwrap();
    let phase = doc
        .get("phase")
        .and_then(Value::as_str)
        .map_or_else(|| "<none>".to_string(), str::to_string);
    let round = doc
        .get("round")
        .and_then(Value::as_u64)
        .map_or_else(|| "<none>".to_string(), |r| r.to_string());
    let message = doc.get("message").and_then(Value::as_str).unwrap_or("<none>");
    println!("== post-mortem: {dump_path} ==");
    println!("failing rank : {failing}");
    println!("last phase   : {phase}");
    println!("last round   : {round}");
    println!("panic        : {message}");

    println!("\n-- per-rank costs up to the abort --");
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "rank", "words sent", "words recv", "msgs sent", "msgs recv", "rounds"
    );
    if let Some(per_rank) =
        doc.get("report").and_then(|r| r.get("per_rank")).and_then(Value::as_array)
    {
        for r in per_rank {
            let cell = |key: &str| r.get(key).and_then(Value::as_u64).unwrap_or(0);
            println!(
                "{:>5} {:>12} {:>12} {:>10} {:>10} {:>8}",
                cell("rank"),
                cell("words_sent"),
                cell("words_recv"),
                cell("msgs_sent"),
                cell("msgs_recv"),
                cell("rounds"),
            );
        }
    }

    println!("\n-- flight-recorder windows --");
    println!(
        "{:>5} {:>8} {:>9} {:>8} {:>12} {:>12} {:>12}",
        "rank", "records", "recorded", "dropped", "words sent", "words recv", "overhead ns"
    );
    if let Some(ranks) = doc.get("ranks").and_then(Value::as_array) {
        for r in ranks {
            let rank = r.get("rank").and_then(Value::as_u64).unwrap_or(0);
            let over = |key: &str| {
                r.get("overhead").and_then(|o| o.get(key)).and_then(Value::as_u64).unwrap_or(0)
            };
            let failed = matches!(r.get("failed"), Some(Value::Bool(true)));
            println!(
                "{:>5} {:>8} {:>9} {:>8} {:>12} {:>12} {:>12}{}",
                rank,
                r.get("events").and_then(Value::as_array).map_or(0, |e| e.len()),
                over("recorded"),
                over("dropped"),
                r.get("words_sent").and_then(Value::as_u64).unwrap_or(0),
                r.get("words_recv").and_then(Value::as_u64).unwrap_or(0),
                over("overhead_ns"),
                if failed { "  <- FAILED" } else { "" },
            );
        }
    }

    if let Some(out) = chrome_path {
        let chrome = doc.get("chrome").unwrap();
        std::fs::write(&out, chrome.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        });
        println!("\nChrome trace written to {out} (open at ui.perfetto.dev)");
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: postmortem <dump.json> [--chrome out.json]");
    std::process::exit(2);
}
