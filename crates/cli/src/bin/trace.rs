//! One-shot observability driver: runs a single traced Algorithm-5 STTSV
//! and prints/exports everything `symtensor-obs` can see about it.
//!
//! Usage: `trace [--q Q] [--scale S] [--mode scheduled|padded|sparse]
//!               [--critical-path] [--replay ALPHA,BETA,GAMMA]
//!               [--trace out.json] [--metrics out.json]`
//!
//! Defaults: `--q 3`, `--scale 1`, `--mode scheduled`. The printed report
//! covers the per-phase cost breakdown (which partitions the run's total
//! traffic exactly), the P×P communication matrix marginals, and the
//! round-occupancy check against the paper's `q³/2 + 3q²/2 − 1` step
//! bound. `--critical-path` replays the trace under the pure-bandwidth
//! model (α=0, β=1, γ=0), prints the per-rank critical-path attribution
//! and — in scheduled mode — asserts the modeled makespan reconciles
//! exactly with `2·W_sched`, the closed-form per-vector word count.
//! `--replay A,B,G` replays under a custom α-β-γ model and prints the
//! modeled-vs-measured drift table plus latency-histogram quantiles.
//! `--trace` writes a Perfetto-loadable Chrome trace (open at
//! `ui.perfetto.dev`), `--metrics` the flat metrics JSON, `--flight` the
//! per-rank flight-recorder window (`symtensor-flight-v1`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cli::obsout::ObsSink;
use symtensor_core::generate::random_symmetric;
use symtensor_obs::occupancy::spherical_step_bound;
use symtensor_obs::replay::replay_with_drift;
use symtensor_obs::{
    flight_json, phase_stats, quantile_cell, AlphaBetaModel, CriticalPath, RunObservation,
    StragglerReport,
};
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{
    bounds, parallel_sttsv_traced_flight, CommSchedule, Mode, TetraPartition,
};
use symtensor_steiner::spherical;

fn main() {
    let (sink, rest) = ObsSink::from_args(std::env::args().skip(1));
    let mut q = 3usize;
    let mut scale = 1usize;
    let mut mode = Mode::Scheduled;
    let mut critical_path = false;
    let mut replay_model: Option<AlphaBetaModel> = None;
    let mut flight_path: Option<String> = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--q" => q = parse_num(iter.next(), "--q"),
            "--scale" => scale = parse_num(iter.next(), "--scale"),
            "--mode" => {
                mode = match iter.next().map(String::as_str) {
                    Some("scheduled") => Mode::Scheduled,
                    Some("padded") => Mode::AllToAllPadded,
                    Some("sparse") => Mode::AllToAllSparse,
                    other => usage(&format!("unknown --mode {other:?}")),
                }
            }
            "--critical-path" => critical_path = true,
            "--replay" => replay_model = Some(parse_model(iter.next())),
            "--flight" => {
                flight_path = Some(match iter.next() {
                    Some(path) => path.clone(),
                    None => usage("--flight requires an output path"),
                })
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if !(2..=5).contains(&q) {
        usage("--q must be in 2..=5 (simulated ranks = q(q²+1)(q+1)/2 threads)");
    }

    let p = bounds::spherical_procs(q);
    let n = (q * q + 1) * q * (q + 1) * scale;
    let mode_label = match mode {
        Mode::Scheduled => "scheduled",
        Mode::AllToAllPadded => "padded",
        Mode::AllToAllSparse => "sparse",
    };
    println!("== traced Algorithm-5 STTSV: q = {q}, P = {p}, n = {n}, mode = {mode_label} ==");

    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let (run, traces, flight) = parallel_sttsv_traced_flight(&tensor, &part, &x, mode);
    let obs = RunObservation::new(run.report.clone(), traces);

    // Per-phase breakdown (top-level spans partition the totals exactly).
    println!("\n-- per-phase cost breakdown --");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "phase", "spans", "words sent", "words recv", "max bw", "time (µs)"
    );
    let spans = obs.spans();
    let stats = phase_stats(&spans);
    let mut sent_sum = 0u64;
    for (name, s) in &stats {
        println!(
            "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10.1}",
            name,
            s.count,
            s.total_cost.words_sent,
            s.total_cost.words_recv,
            s.max_bandwidth,
            s.total_ns as f64 / 1_000.0
        );
        sent_sum += s.total_cost.words_sent;
    }
    println!(
        "{:<16} {:>6} {:>12} {:>12}",
        "(total)",
        "",
        obs.report.total_words_sent(),
        obs.report.total_words_recv()
    );
    assert_eq!(sent_sum, obs.report.total_words_sent(), "phases must partition the total");

    // Comm matrix (validated against the hot-path counters).
    let matrix = obs.comm_matrix();
    println!("\n-- P×P communication matrix (words) --");
    if p <= 16 {
        print!("{}", matrix.render_text());
    } else {
        let max_row = (0..p).map(|s| matrix.row_words(s)).max().unwrap();
        let max_col = (0..p).map(|d| matrix.col_words(d)).max().unwrap();
        println!("P = {p} (matrix suppressed; marginals only)");
        println!("max row (sent by one rank)  = {max_row}");
        println!("max col (recv by one rank)  = {max_col}");
    }
    println!("matrix marginals reconcile with CostReport ✓");

    // Round occupancy vs the paper's step bound.
    let occ = obs.occupancy();
    println!("\n-- schedule-round occupancy --");
    if mode == Mode::Scheduled {
        let sched = CommSchedule::build(&part);
        println!(
            "rounds observed = {} | schedule = {} | bound q³/2+3q²/2−1 = {} | P−1 = {}",
            occ.num_rounds(),
            sched.num_rounds(),
            spherical_round_count(q),
            p - 1
        );
        println!(
            "mean sender utilization: observed {:.3} | planned {:.3}",
            occ.mean_sender_utilization(),
            sched.planned_utilization()
        );
        assert_eq!(occ.num_rounds() as u64, spherical_step_bound(q));
        assert!(occ.within_step_bound(q));
    } else {
        // All-to-All runs annotate each of their P−1 pairwise steps.
        println!(
            "rounds observed = {} | all-to-all steps P−1 = {} | {} unannotated words",
            occ.num_rounds(),
            p - 1,
            occ.unannotated_words
        );
        assert_eq!(occ.num_rounds(), p - 1, "all-to-all must annotate exactly P−1 steps");
        assert_eq!(occ.unannotated_words, 0, "every word must carry a round annotation");
    }

    println!(
        "\nbandwidth cost = {} words (lower bound {:.1})",
        obs.report.bandwidth_cost(),
        bounds::lower_bound_words(n, p)
    );

    if critical_path {
        // Replay under the pure-bandwidth model: 1 ns per word, free
        // latency and compute — virtual time *is* the word count.
        let rep = obs.replay(AlphaBetaModel::bandwidth_only());
        let cp = CriticalPath::extract(&rep);
        println!("\n-- critical path (α=0, β=1, γ=0: virtual time = words) --");
        print!("{}", cp.render_attribution());
        let w = bounds::scheduled_words_per_vector(n, q);
        if mode == Mode::Scheduled {
            println!(
                "modeled makespan = {} words | closed-form 2·W_sched = {} ({} per phase)",
                rep.makespan_ns,
                2 * w,
                w
            );
            assert_eq!(
                rep.makespan_ns,
                (2 * w) as f64,
                "scheduled makespan must reconcile (±0 words) with 2·scheduled_words_per_vector"
            );
            println!("makespan reconciles with the closed-form schedule cost ✓");
        } else {
            println!(
                "modeled makespan = {} words | scheduled closed form would be {} (2·W_sched)",
                rep.makespan_ns,
                2 * w
            );
        }
    }

    if let Some(model) = replay_model {
        let (rep, drift) = match replay_with_drift(&obs.traces, model) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: replay failed: {e}");
                std::process::exit(1);
            }
        };
        println!("\n-- α-β-γ replay (α={}, β={}, γ={}) --", model.alpha, model.beta, model.gamma);
        println!(
            "modeled makespan = {:.1} ns | max send-busy = {:.1} | max compute = {:.1}",
            rep.makespan_ns,
            rep.max_send_busy_ns(),
            rep.max_compute_ns()
        );
        println!("{:<16} {:>14} {:>14} {:>8}", "phase", "modeled ns", "measured ns", "ratio");
        for d in &drift {
            println!(
                "{:<16} {:>14.1} {:>14.1} {:>8.3}",
                d.phase,
                d.modeled_ns,
                d.measured_ns,
                d.ratio()
            );
        }
        let hists = obs.histograms();
        println!(
            "round-step latency ns: p50={} p90={} p99={} max={}",
            quantile_cell(&hists.round_step_ns, 0.50),
            quantile_cell(&hists.round_step_ns, 0.90),
            quantile_cell(&hists.round_step_ns, 0.99),
            hists.round_step_ns.max
        );
        println!(
            "recv transit ns:       p50={} p90={} p99={} max={}",
            quantile_cell(&hists.recv_wait_ns, 0.50),
            quantile_cell(&hists.recv_wait_ns, 0.90),
            quantile_cell(&hists.recv_wait_ns, 0.99),
            hists.recv_wait_ns.max
        );
        let stragglers = StragglerReport::from_spans(&obs.spans(), obs.traces.len(), 5);
        print!("{}", stragglers.render());
    }

    if let Some(path) = &flight_path {
        let doc = flight_json(&flight);
        std::fs::write(path, doc.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        let recorded: u64 = flight.iter().map(|s| s.overhead.recorded).sum();
        let dropped: u64 = flight.iter().map(|s| s.overhead.dropped).sum();
        let overhead: u64 = flight.iter().map(|s| s.overhead.overhead_ns).sum();
        println!(
            "\n-- flight recorder --\n{} records across {} ranks ({} evicted from the rings), \
             self-overhead {} ns total\nwindow written to {path}",
            recorded,
            flight.len(),
            dropped,
            overhead
        );
    }

    sink.record(format!("trace q={q} n={n} {mode_label}"), obs);
    if sink.enabled() {
        println!();
        sink.flush();
    } else {
        println!(
            "\n(pass --trace out.json to export a Perfetto trace, --metrics m.json for metrics)"
        );
    }
}

fn parse_num(arg: Option<&String>, flag: &str) -> usize {
    match arg.and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => usage(&format!("{flag} requires a number")),
    }
}

fn parse_model(arg: Option<&String>) -> AlphaBetaModel {
    let parts: Vec<f64> = arg
        .map(|s| s.split(',').filter_map(|p| p.trim().parse().ok()).collect())
        .unwrap_or_default();
    match parts.as_slice() {
        [alpha, beta, gamma] => {
            AlphaBetaModel { alpha: *alpha, beta: *beta, gamma: *gamma, link_ns: 0.0 }
        }
        [alpha, beta, gamma, link] => {
            AlphaBetaModel { alpha: *alpha, beta: *beta, gamma: *gamma, link_ns: *link }
        }
        _ => usage("--replay requires ALPHA,BETA,GAMMA[,LINK] (e.g. --replay 1000,0.5,1)"),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: trace [--q Q] [--scale S] [--mode scheduled|padded|sparse] [--critical-path] [--replay A,B,G] [--trace out.json] [--metrics out.json] [--flight out.json]"
    );
    std::process::exit(2);
}
