//! One-shot observability driver: runs a single traced Algorithm-5 STTSV
//! and prints/exports everything `symtensor-obs` can see about it.
//!
//! Usage: `trace [--q Q] [--scale S] [--mode scheduled|padded|sparse]
//!               [--trace out.json] [--metrics out.json]`
//!
//! Defaults: `--q 3`, `--scale 1`, `--mode scheduled`. The printed report
//! covers the per-phase cost breakdown (which partitions the run's total
//! traffic exactly), the P×P communication matrix marginals, and the
//! round-occupancy check against the paper's `q³/2 + 3q²/2 − 1` step
//! bound. `--trace` writes a Perfetto-loadable Chrome trace (open at
//! `ui.perfetto.dev`), `--metrics` the flat metrics JSON.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cli::obsout::ObsSink;
use symtensor_core::generate::random_symmetric;
use symtensor_obs::occupancy::spherical_step_bound;
use symtensor_obs::{phase_stats, RunObservation};
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{bounds, parallel_sttsv_traced, CommSchedule, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let (sink, rest) = ObsSink::from_args(std::env::args().skip(1));
    let mut q = 3usize;
    let mut scale = 1usize;
    let mut mode = Mode::Scheduled;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--q" => q = parse_num(iter.next(), "--q"),
            "--scale" => scale = parse_num(iter.next(), "--scale"),
            "--mode" => {
                mode = match iter.next().map(String::as_str) {
                    Some("scheduled") => Mode::Scheduled,
                    Some("padded") => Mode::AllToAllPadded,
                    Some("sparse") => Mode::AllToAllSparse,
                    other => usage(&format!("unknown --mode {other:?}")),
                }
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if !(2..=5).contains(&q) {
        usage("--q must be in 2..=5 (simulated ranks = q(q²+1)(q+1)/2 threads)");
    }

    let p = bounds::spherical_procs(q);
    let n = (q * q + 1) * q * (q + 1) * scale;
    let mode_label = match mode {
        Mode::Scheduled => "scheduled",
        Mode::AllToAllPadded => "padded",
        Mode::AllToAllSparse => "sparse",
    };
    println!("== traced Algorithm-5 STTSV: q = {q}, P = {p}, n = {n}, mode = {mode_label} ==");

    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(4242);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let (run, traces) = parallel_sttsv_traced(&tensor, &part, &x, mode);
    let obs = RunObservation::new(run.report.clone(), traces);

    // Per-phase breakdown (top-level spans partition the totals exactly).
    println!("\n-- per-phase cost breakdown --");
    println!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "phase", "spans", "words sent", "words recv", "max bw", "time (µs)"
    );
    let spans = obs.spans();
    let stats = phase_stats(&spans);
    let mut sent_sum = 0u64;
    for (name, s) in &stats {
        println!(
            "{:<16} {:>6} {:>12} {:>12} {:>12} {:>10.1}",
            name,
            s.count,
            s.total_cost.words_sent,
            s.total_cost.words_recv,
            s.max_bandwidth,
            s.total_ns as f64 / 1_000.0
        );
        sent_sum += s.total_cost.words_sent;
    }
    println!(
        "{:<16} {:>6} {:>12} {:>12}",
        "(total)",
        "",
        obs.report.total_words_sent(),
        obs.report.total_words_recv()
    );
    assert_eq!(sent_sum, obs.report.total_words_sent(), "phases must partition the total");

    // Comm matrix (validated against the hot-path counters).
    let matrix = obs.comm_matrix();
    println!("\n-- P×P communication matrix (words) --");
    if p <= 16 {
        print!("{}", matrix.render_text());
    } else {
        let max_row = (0..p).map(|s| matrix.row_words(s)).max().unwrap();
        let max_col = (0..p).map(|d| matrix.col_words(d)).max().unwrap();
        println!("P = {p} (matrix suppressed; marginals only)");
        println!("max row (sent by one rank)  = {max_row}");
        println!("max col (recv by one rank)  = {max_col}");
    }
    println!("matrix marginals reconcile with CostReport ✓");

    // Round occupancy vs the paper's step bound.
    let occ = obs.occupancy();
    println!("\n-- schedule-round occupancy --");
    if mode == Mode::Scheduled {
        let sched = CommSchedule::build(&part);
        println!(
            "rounds observed = {} | schedule = {} | bound q³/2+3q²/2−1 = {} | P−1 = {}",
            occ.num_rounds(),
            sched.num_rounds(),
            spherical_round_count(q),
            p - 1
        );
        println!(
            "mean sender utilization: observed {:.3} | planned {:.3}",
            occ.mean_sender_utilization(),
            sched.planned_utilization()
        );
        assert_eq!(occ.num_rounds() as u64, spherical_step_bound(q));
        assert!(occ.within_step_bound(q));
    } else {
        println!(
            "mode '{mode_label}' is not round-annotated ({} unannotated words)",
            occ.unannotated_words
        );
    }

    println!(
        "\nbandwidth cost = {} words (lower bound {:.1})",
        obs.report.bandwidth_cost(),
        bounds::lower_bound_words(n, p)
    );

    sink.record(format!("trace q={q} n={n} {mode_label}"), obs);
    if sink.enabled() {
        println!();
        sink.flush();
    } else {
        println!(
            "\n(pass --trace out.json to export a Perfetto trace, --metrics m.json for metrics)"
        );
    }
}

fn parse_num(arg: Option<&String>, flag: &str) -> usize {
    match arg.and_then(|s| s.parse().ok()) {
        Some(v) => v,
        None => usage(&format!("{flag} requires a number")),
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: trace [--q Q] [--scale S] [--mode scheduled|padded|sparse] [--trace out.json] [--metrics out.json]"
    );
    std::process::exit(2);
}
