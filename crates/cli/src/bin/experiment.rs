//! Paper-vs-measured experiment driver.
//!
//! Usage: `experiment [comm|baselines|balance|memory|schedule|hopm|kernels|all]
//!                    [--threads N] [--batch B]
//!                    [--trace out.json] [--metrics out.json]`
//!
//! `experiment chaos [--seed S] [--drop-prob P] [--crash rank@phase:round]`
//! runs the E15 chaos A/B: the batched serving path fault-free vs the same
//! requests under deterministic fault injection with retry/degrade
//! recovery, reporting retry counts and the degraded-request rate.
//!
//! Each subcommand executes the relevant algorithms on the simulated
//! machine, prints measured quantities next to the paper's closed forms,
//! and asserts the claims it verifies. `EXPERIMENTS.md` records the output.
//!
//! With `--trace`/`--metrics`, every measured Algorithm-5 run is re-run in
//! traced mode and collected into a Perfetto-loadable trace (one named
//! process per run) and/or a flat metrics JSON (per-phase word totals,
//! message-size histograms, comm matrix, round occupancy).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cli::obsout::ObsSink;
use symtensor_core::generate::{random_odeco, random_symmetric};
use symtensor_core::hopm::HopmOptions;
use symtensor_obs::{AlphaBetaModel, RunObservation};
use symtensor_parallel::baselines::{baseline_1d_words, baseline_3d_words, sttsv_1d, sttsv_3d};
use symtensor_parallel::bounds;
use symtensor_parallel::hopm::parallel_hopm;
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{
    parallel_sttsv, parallel_sttsv_multi, parallel_sttsv_overlapped_traced,
    parallel_sttsv_planned_traced, parallel_sttsv_traced, CommSchedule, Mode, SttsvRun,
    TetraPartition,
};
use symtensor_steiner::spherical;

/// Counting global allocator: E12 reports measured heap allocations per
/// STTSV iteration for the legacy vs compiled-plan paths. Counting is a
/// single relaxed atomic increment; every other experiment is unaffected.
mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct Counting;
    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static ALLOCATOR: Counting = Counting;

    /// Total heap allocations (allocs + reallocs) so far, process-wide.
    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

fn main() {
    let (sink, rest) = ObsSink::from_args(std::env::args().skip(1));
    // Node-level knobs for the local kernels (`kernels` subcommand and the
    // distributed batched run): worker threads per rank and batch size.
    let mut threads = 1usize;
    let mut batch = 4usize;
    let mut plan = false;
    let mut flight = false;
    let mut positional: Vec<String> = Vec::new();
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                threads = v.parse().expect("--threads expects a positive integer");
            }
            "--batch" => {
                let v = it.next().expect("--batch needs a value");
                batch = v.parse().expect("--batch expects a positive integer");
            }
            "--plan" => plan = true,
            "--flight" => flight = true,
            _ => positional.push(a),
        }
    }
    let arg = positional.first().cloned().unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "comm" => comm(&sink),
        "baselines" => baselines(),
        "balance" => balance(),
        "memory" => memory(),
        "schedule" => schedule(),
        "hopm" => hopm(),
        "seqio" => seqio(),
        "ablation" => ablation(),
        "triangle" => triangle(),
        "kernels" => kernels(threads, batch, plan, flight),
        "overlap" => overlap_ab(threads),
        "chaos" => chaos(&positional[1..]),
        "telemetry" => telemetry_ab(threads),
        "regress" => regress(&positional[1..]),
        "all" => {
            comm(&sink);
            baselines();
            balance();
            memory();
            schedule();
            hopm();
            seqio();
            ablation();
            triangle();
            kernels(threads, batch, plan, flight);
            overlap_ab(threads);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiment [comm|baselines|balance|memory|schedule|hopm|seqio|ablation|kernels|overlap|telemetry|all] [--threads N] [--batch B] [--plan] [--flight] [--trace out.json] [--metrics out.json]"
            );
            eprintln!(
                "       experiment chaos [--seed S] [--drop-prob P] [--crash rank@phase:round]"
            );
            eprintln!(
                "       experiment regress --baseline BENCH.json --current NEW.json [--threshold 0.15] [--out diff.json]"
            );
            std::process::exit(2);
        }
    }
    sink.flush();
}

/// E15: the chaos A/B. Serves one request stream twice — fault-free, then
/// under a seeded [`symtensor_mpsim::FaultPlan`] with bounded-retry
/// recovery — and reports per-request retries, the degraded rate, and that
/// every recovered output is bit-identical to the fault-free run.
fn chaos(args: &[String]) {
    use std::time::Duration;
    use symtensor_core::seq::sttsv_sym;
    use symtensor_mpsim::{CrashSpec, FaultPlan};
    use symtensor_parallel::{parallel_sttsv_serve, parallel_sttsv_serve_chaos, ChaosPolicy};

    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!("usage: experiment chaos [--seed S] [--drop-prob P] [--crash rank@phase:round]");
        std::process::exit(2);
    };
    let mut seed = 2025u64;
    let mut drop_prob = 0.01f64;
    let mut crash: Option<CrashSpec> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => fail("--seed expects an unsigned integer"),
            },
            "--drop-prob" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => drop_prob = p,
                _ => fail("--drop-prob expects a probability in [0, 1]"),
            },
            "--crash" => match it.next().map(|v| CrashSpec::parse(v)) {
                Some(Ok(spec)) => crash = Some(spec),
                Some(Err(e)) => fail(&format!("--crash: {e}")),
                None => fail("--crash needs a rank@phase:round value"),
            },
            other => fail(&format!("unknown chaos argument '{other}'")),
        }
    }

    println!(
        "== E15: chaos A/B (q = 2, P = 10; seed = {seed}, drop-prob = {drop_prob}{}) ==",
        crash
            .as_ref()
            .map(|c| format!(", crash = {}@{}:{}", c.rank, c.phase, c.round))
            .unwrap_or_default()
    );
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(1015);
    let tensor = random_symmetric(n, &mut rng);
    let requests: Vec<symtensor_parallel::ServeRequest> = (0..8)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + 5 * v) as f64 * 0.017).sin()).collect();
            symtensor_parallel::ServeRequest::new(v as u64, x)
        })
        .collect();

    let base = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 2)
        .expect("fault-free serving run");
    let mut fault_plan = FaultPlan::seeded(seed).with_drop_prob(drop_prob);
    if let Some(spec) = crash.clone() {
        fault_plan = fault_plan.with_crash(spec);
    }
    let policy = ChaosPolicy {
        plan: fault_plan,
        max_retries: 2,
        backoff: Duration::from_millis(10),
        recv_timeout: Duration::from_millis(250),
    };
    // Injected rank failures are caught and retried by the serving layer;
    // keep the default hook from dumping a backtrace for each one.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let chaotic =
        parallel_sttsv_serve_chaos(&tensor, &part, &requests, Mode::Scheduled, 1, 2, &policy)
            .expect("chaos serving run");
    std::panic::set_hook(prev_hook);

    println!("{:>4} {:>6} {:>8} {:>9} | {:>10}", "id", "batch", "retries", "degraded", "output");
    let mut total_retries = 0u64;
    let mut degraded = 0usize;
    for (i, rec) in chaotic.records.iter().enumerate() {
        let verdict = if rec.degraded {
            degraded += 1;
            let (expected, _) = sttsv_sym(&tensor, &requests[i].x);
            let exact =
                chaotic.ys[i].iter().zip(&expected).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(exact, "degraded request {} must be the sequential answer", rec.id);
            "fallback"
        } else {
            let exact =
                chaotic.ys[i].iter().zip(&base.ys[i]).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(exact, "recovered request {} must be bit-identical", rec.id);
            "identical"
        };
        total_retries += u64::from(rec.retries);
        println!(
            "{:>4} {:>6} {:>8} {:>9} | {:>10}",
            rec.id, rec.batch, rec.retries, rec.degraded, verdict
        );
    }
    println!(
        "fault-free words: {}; with faults (incl. failed attempts): {}",
        base.report.total_words_sent(),
        chaotic.report.total_words_sent()
    );
    println!(
        "total retries: {total_retries}; degraded: {degraded}/{} ({:.1}%)",
        chaotic.records.len(),
        degraded as f64 / chaotic.records.len() as f64 * 100.0
    );
    println!("(recovered outputs bit-identical to the fault-free run ✓)");
    println!();
}

/// E17: the telemetry scrape-overhead A/B. Serves one request stream
/// without a telemetry plane, then with a plane and a background scraper
/// at several intervals, asserting the outputs and [`symtensor_mpsim::CostReport`]s
/// are bit-identical and reporting the wall-clock delta per interval.
fn telemetry_ab(threads: usize) {
    use std::sync::Arc;
    use std::time::Instant;
    use symtensor_parallel::{parallel_sttsv_serve, parallel_sttsv_serve_with};
    use symtensor_telemetry::{ScrapeConfig, Scraper, TelemetryPlane};

    println!("== E17: telemetry scrape-overhead A/B (q = 2, P = 10, threads = {threads}) ==");
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(1015);
    let tensor = random_symmetric(n, &mut rng);
    let requests: Vec<symtensor_parallel::ServeRequest> = (0..12)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + 5 * v) as f64 * 0.017).sin()).collect();
            symtensor_parallel::ServeRequest::new(v as u64, x)
        })
        .collect();

    let t0 = Instant::now();
    let base = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, threads, 3)
        .expect("baseline serving run");
    let base_ns = t0.elapsed().as_nanos() as u64;
    let budget = 2 * bounds::scheduled_words_per_vector(n, 2) as u64;

    println!(
        "{:>12} {:>9} {:>11} {:>9} {:>13}",
        "interval", "samples", "wall (ms)", "Δ vs off", "budget ratio"
    );
    println!("{:>12} {:>9} {:>11.3} {:>9} {:>13}", "off", "-", base_ns as f64 / 1e6, "-", "-");
    for interval_ms in [50u64, 5, 1] {
        let plane = Arc::new(TelemetryPlane::new(part.num_procs()));
        let cfg = ScrapeConfig::default()
            .with_interval(std::time::Duration::from_millis(interval_ms))
            .with_budget_words_per_vector(budget);
        let t0 = Instant::now();
        let (run, series) = Scraper::run_scoped(plane.clone(), cfg, || {
            parallel_sttsv_serve_with(
                &tensor,
                &part,
                &requests,
                Mode::Scheduled,
                threads,
                3,
                Some(&plane),
            )
            .expect("telemetry serving run")
        });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        // The tentpole invariant: telemetry observes, it never steers.
        for (y, base_y) in run.ys.iter().zip(&base.ys) {
            assert!(
                y.iter().zip(base_y).all(|(a, b)| a.to_bits() == b.to_bits()),
                "telemetry must not change a single output bit"
            );
        }
        assert_eq!(run.report, base.report, "telemetry must not move a single word");
        let last = series.last().expect("final sample");
        println!(
            "{:>10}ms {:>9} {:>11.3} {:>8.1}% {:>13.3}",
            interval_ms,
            series.samples.len(),
            wall_ns as f64 / 1e6,
            (wall_ns as f64 / base_ns as f64 - 1.0) * 100.0,
            last.derived.budget_ratio.unwrap_or(f64::NAN),
        );
    }
    println!("(ys and CostReports bit-identical with telemetry on, every interval ✓)");
    println!(
        "(single-host caveat: scraper threads share cores with the rank threads, so the \
         wall-clock deltas are upper bounds — on a real cluster the scrape runs beside, \
         not inside, the compute)"
    );
    println!();
}

/// The perf-regression gate: diffs two `BENCH_*.json` snapshots on
/// `(kernel, n, q)` / `ns_per_iter` and exits nonzero when any kernel got
/// slower than the threshold (default +15%) or silently disappeared.
fn regress(args: &[String]) -> ! {
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut threshold = 0.15f64;
    let mut it = args.iter();
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}");
        eprintln!(
            "usage: experiment regress --baseline BENCH.json --current NEW.json [--threshold 0.15] [--out diff.json]"
        );
        std::process::exit(2);
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().cloned(),
            "--current" => current_path = it.next().cloned(),
            "--out" => out_path = it.next().cloned(),
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => fail("--threshold expects a positive number (e.g. 0.15 for +15%)"),
            },
            other => fail(&format!("unknown regress argument '{other}'")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| fail("--baseline is required"));
    let current_path = current_path.unwrap_or_else(|| fail("--current is required"));
    let load = |path: &str| -> Vec<symtensor_obs::BenchRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        symtensor_obs::parse_snapshot(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let report = symtensor_obs::RegressionReport::evaluate(&baseline, &current, threshold);
    println!("== perf regression gate: {baseline_path} -> {current_path} ==");
    print!("{}", report.render_table());
    if let Some(out) = out_path {
        std::fs::write(&out, report.to_json().to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(2);
        });
        println!("diff written to {out}");
    }
    if report.regressed() {
        eprintln!("FAIL: performance regression beyond +{:.0}%", threshold * 100.0);
        std::process::exit(1);
    }
    println!("PASS: no regression beyond +{:.0}%", threshold * 100.0);
    std::process::exit(0);
}

/// Runs Algorithm 5, additionally recording the traced observation when
/// `--trace`/`--metrics` was requested.
fn run_alg5(
    sink: &ObsSink,
    label: String,
    tensor: &symtensor_core::SymTensor3,
    part: &TetraPartition,
    x: &[f64],
    mode: Mode,
) -> SttsvRun {
    if sink.enabled() {
        let (run, traces) = parallel_sttsv_traced(tensor, part, x, mode);
        sink.record(label, RunObservation::new(run.report.clone(), traces));
        run
    } else {
        parallel_sttsv(tensor, part, x, mode)
    }
}

/// E1/E2: measured per-processor communication of Algorithm 5 vs the
/// Theorem 5.2 lower bound, in scheduled and padded-All-to-All modes.
fn comm(sink: &ObsSink) {
    println!("== E1/E2: communication optimality (measured vs Theorem 5.2 bound) ==");
    println!(
        "{:>3} {:>5} {:>6} | {:>12} {:>12} {:>12} | {:>9} {:>9}",
        "q", "P", "n", "LB (words)", "sched", "all-to-all", "sch/LB", "a2a/LB"
    );
    let mut rng = StdRng::seed_from_u64(1001);
    for q in [2usize, 3] {
        let p = bounds::spherical_procs(q);
        let m = q * q + 1;
        let lam1 = q * (q + 1);
        for scale in [1usize, 2, 4] {
            let n = m * lam1 * scale;
            let part = TetraPartition::new(spherical(q as u64), n).unwrap();
            let tensor = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.01).sin()).collect();
            let sched = run_alg5(
                sink,
                format!("comm q={q} n={n} scheduled"),
                &tensor,
                &part,
                &x,
                Mode::Scheduled,
            );
            let a2a = run_alg5(
                sink,
                format!("comm q={q} n={n} all-to-all"),
                &tensor,
                &part,
                &x,
                Mode::AllToAllPadded,
            );
            let lb = bounds::lower_bound_words(n, p);
            let sw = sched.report.bandwidth_cost() as f64;
            let aw = a2a.report.bandwidth_cost() as f64;
            println!(
                "{q:>3} {p:>5} {n:>6} | {lb:>12.1} {sw:>12.0} {aw:>12.0} | {:>9.3} {:>9.3}",
                sw / lb,
                aw / lb
            );
            assert!(sw >= lb * 0.999, "no algorithm may beat the bound");
            assert_eq!(sw as usize, bounds::scheduled_words_total(n, q));
            assert_eq!(aw as usize, bounds::alltoall_words_total(n, q));
        }
    }
    // Larger q via closed forms (execution at q ≥ 5 is thread-heavy;
    // the formulas are validated against measurement at q ≤ 3 above).
    println!("-- closed-form extension (validated formulas) --");
    for q in [4usize, 5, 7, 9, 13] {
        let p = bounds::spherical_procs(q);
        let n = (q * q + 1) * q * (q + 1) * 4;
        let lb = bounds::lower_bound_words(n, p);
        let sw = bounds::scheduled_words_total(n, q) as f64;
        let aw = bounds::alltoall_words_total(n, q) as f64;
        println!(
            "{q:>3} {p:>5} {n:>6} | {lb:>12.1} {sw:>12.0} {aw:>12.0} | {:>9.3} {:>9.3}",
            sw / lb,
            aw / lb
        );
    }
    println!();
}

/// E3: Algorithm 5 vs the 1-D and 3-D baselines, showing the crossover:
/// at P = 10 (q = 2) the 1-D all-gather is still cheapest (its cost is
/// n(1−1/P) vs Algorithm 5's 2n(q+1)/(q²+1) = n at q = 2), but from
/// q = 3 (P ≈ 30) on, Algorithm 5 wins and its lead grows like P^{1/3}.
fn baselines() {
    println!("== E3: Algorithm 5 vs baselines (max per-rank words moved, per n) ==");
    println!(
        "{:>6} {:>5} | {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9}",
        "n", "~P", "alg5", "3d-cubic", "1d-rows", "alg5/n", "3d/n", "1d/n"
    );
    let mut rng = StdRng::seed_from_u64(1002);
    // Measured rows: q = 2 vs g = 2 vs 1-D P = 10, then q = 3 vs g = 3 vs
    // 1-D P = 30 (the closest sizes the three families allow).
    for (q, g, p1d, n) in [(2usize, 2usize, 10usize, 120usize), (3, 3, 30, 240)] {
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).cos()).collect();
        let alg5 = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
        let cubic = sttsv_3d(&tensor, &x, g);
        let rows = sttsv_1d(&tensor, &x, p1d);
        let (a, c, r) = (
            alg5.report.bandwidth_cost(),
            cubic.report.bandwidth_cost(),
            rows.report.bandwidth_cost(),
        );
        println!(
            "{:>6} {:>5} | {:>10} {:>10} {:>10} | {:>9.3} {:>9.3} {:>9.3}",
            n,
            p1d,
            a,
            c,
            r,
            a as f64 / n as f64,
            c as f64 / n as f64,
            r as f64 / n as f64,
        );
        if q == 2 {
            // Crossover: at P = 10 the 1-D baseline still wins.
            assert!(r < a, "1-D must win at q = 2");
        } else {
            // From q = 3 Algorithm 5 beats both baselines.
            assert!(a < c && a < r, "alg5 must win at q = 3: {a} vs {c} vs {r}");
        }
        let _ = (baseline_3d_words(n, g), baseline_1d_words(n, p1d));
    }
    // Model rows for larger machines: the gap grows like P^{1/3}.
    println!("-- closed-form extension --");
    for q in [5usize, 7, 9, 13] {
        let p = bounds::spherical_procs(q);
        let g = (p as f64).cbrt().round() as usize;
        let n = (q * q + 1) * q * (q + 1) * 4;
        let a = bounds::scheduled_words_total(n, q) as f64;
        let c = baseline_3d_words(n, g);
        let r = baseline_1d_words(n, p);
        println!(
            "{:>6} {:>5} | {:>10.0} {:>10.0} {:>10.0} | {:>9.3} {:>9.3} {:>9.3}",
            n,
            p,
            a,
            c,
            r,
            a / n as f64,
            c / n as f64,
            r / n as f64,
        );
        assert!(a < c && c < r);
    }
    println!();
}

/// E4: computational load balance — max per-rank ternary mults vs n³/(2P).
fn balance() {
    println!("== E4: computational load balance (ternary multiplications) ==");
    println!(
        "{:>3} {:>5} {:>6} | {:>14} {:>14} {:>8}",
        "q", "P", "n", "max per rank", "n^3/(2P)", "ratio"
    );
    let mut rng = StdRng::seed_from_u64(1003);
    for (q, scale) in [(2usize, 4usize), (2, 8), (3, 1), (3, 2)] {
        let p = bounds::spherical_procs(q);
        let n = (q * q + 1) * q * (q + 1) * scale;
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x = vec![1.0; n];
        let run = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllSparse);
        let max = *run.ternary_per_rank.iter().max().unwrap() as f64;
        let ideal = bounds::comp_cost_leading(n, p);
        println!("{q:>3} {p:>5} {n:>6} | {max:>14.0} {ideal:>14.1} {:>8.4}", max / ideal);
        assert!(max / ideal < 1.35, "imbalance must stay bounded");
        let total: u64 = run.ternary_per_rank.iter().sum();
        let n64 = n as u64;
        assert_eq!(total, n64 * n64 * (n64 + 1) / 2, "total work = n²(n+1)/2");
    }
    println!("(ratio → 1 as b grows; the paper notes imbalance only in lower-order terms)");
    println!();
}

/// E5: memory footprint — per-rank tensor and vector words vs §6.1.3.
fn memory() {
    println!("== E5: per-processor memory (words) vs §6.1.3 ==");
    println!(
        "{:>3} {:>5} {:>6} | {:>12} {:>12} {:>8} | {:>8} {:>8}",
        "q", "P", "n", "max tensor", "n^3/(6P)", "ratio", "vec", "n/P"
    );
    for (q, scale) in [(2usize, 4usize), (3, 1), (3, 3)] {
        let p = bounds::spherical_procs(q);
        let n = (q * q + 1) * q * (q + 1) * scale;
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let max_tensor = (0..p).map(|pr| part.tensor_words(pr)).max().unwrap() as f64;
        let ideal = (n as f64).powi(3) / (6.0 * p as f64);
        let vec_words = part.vector_words(0);
        for pr in 0..p {
            assert_eq!(part.vector_words(pr), n / p, "each rank owns exactly n/P per vector");
        }
        println!(
            "{q:>3} {p:>5} {n:>6} | {max_tensor:>12.0} {ideal:>12.1} {:>8.4} | {vec_words:>8} {:>8}",
            max_tensor / ideal,
            n / p
        );
    }
    println!();
}

/// E6: point-to-point schedule length vs `q³/2 + 3q²/2 − 1`.
fn schedule() {
    println!("== E6: schedule length (steps) vs q³/2 + 3q²/2 − 1 ==");
    println!("{:>8} {:>5} | {:>9} {:>9} {:>7}", "system", "P", "measured", "formula", "P-1");
    for q in [2usize, 3, 4, 5] {
        let m = q * q + 1;
        let part = TetraPartition::new(spherical(q as u64), m * q * (q + 1)).unwrap();
        let sched = CommSchedule::build(&part);
        let formula = spherical_round_count(q);
        println!(
            "{:>8} {:>5} | {:>9} {:>9} {:>7}",
            format!("q={q}"),
            part.num_procs(),
            sched.num_rounds(),
            formula,
            part.num_procs() - 1
        );
        assert_eq!(sched.num_rounds(), formula);
    }
    let part = TetraPartition::new(symtensor_steiner::sqs8(), 56).unwrap();
    let sched = CommSchedule::build(&part);
    println!("{:>8} {:>5} | {:>9} {:>9} {:>7}", "SQS(8)", 14, sched.num_rounds(), 12, 13);
    assert_eq!(sched.num_rounds(), 12);
    println!();
}

/// E8: end-to-end HOPM with the communication-optimal kernel.
fn hopm() {
    println!("== E8: parallel HOPM on an odeco tensor (q = 2, P = 10) ==");
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(1004);
    let odeco = random_odeco(n, 5, &mut rng);
    let mut x0 = odeco.vectors[0].clone();
    x0[3] += 0.05;
    let opts = HopmOptions { tol: 1e-12, max_iters: 500 };
    let (res, report) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::Scheduled);
    println!(
        "converged: {} in {} iterations; lambda = {:.12} (planted {:.12}); residual = {:.2e}",
        res.converged, res.iters, res.lambda, odeco.eigenvalues[0], res.residual
    );
    println!(
        "per-iteration comm ≈ {} words/rank (2 × scheduled STTSV cost {} + O(1) reductions)",
        report.bandwidth_cost() / (res.iters as u64 + 1).max(1),
        bounds::scheduled_words_total(n, 2)
    );
    assert!(res.converged);
    assert!((res.lambda - odeco.eigenvalues[0]).abs() < 1e-8);
    println!();
}

/// E10 (extension): sequential I/O of STTSV under an LRU cache — blocked
/// (tetrahedral) vs row-major order. The sequential shadow of the paper's
/// reuse analysis: blocking pays exactly when the cache is smaller than
/// the vectors but holds a block's working set.
fn seqio() {
    use symtensor_cachesim::{sttsv_io_blocked, sttsv_io_rowmajor};
    println!("== E10: sequential vector I/O (LRU cache, line = 1 word) ==");
    println!(
        "{:>5} {:>7} | {:>12} {:>12} {:>8}",
        "n", "cache", "row-major", "blocked b=8", "ratio"
    );
    let n = 96;
    for cache_words in [64usize, 128, 192, 512, 4096] {
        let row = sttsv_io_rowmajor(n, cache_words, 1);
        let blk = sttsv_io_blocked(n, 8, cache_words, 1);
        println!(
            "{n:>5} {cache_words:>7} | {:>12} {:>12} {:>8.2}",
            row.vector_misses,
            blk.vector_misses,
            row.vector_misses as f64 / blk.vector_misses.max(1) as f64
        );
        // Tensor traffic is compulsory either way.
        assert_eq!(row.tensor_misses, blk.tensor_misses);
    }
    println!("(blocking wins while the cache is smaller than the two vectors = {} words)", 2 * n);
    println!();
}

/// E11: local kernel throughput — the flat-slab cursor kernel vs the seed
/// per-point kernel, the work-stealing parallel panels and the batched
/// multi-vector path, plus the distributed batched STTSV whose exchange
/// phases amortize latency across the batch.
fn kernels(threads: usize, batch: usize, plan: bool, flight: bool) {
    use std::time::Instant;
    use symtensor_core::seq::{sttsv_sym, sttsv_sym_multi, sttsv_sym_ref};
    use symtensor_core::{sttsv_sym_par, sttsv_sym_par_multi, Pool};

    /// Best-of-3 wall time in seconds.
    fn time<R>(mut f: impl FnMut() -> R) -> (R, f64) {
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..3 {
            let t = Instant::now();
            out = Some(f());
            best = best.min(t.elapsed().as_secs_f64());
        }
        (out.unwrap(), best)
    }
    let rate = |n: usize, secs: f64| {
        let n = n as f64;
        n * n * (n + 1.0) / 2.0 / secs / 1e6
    };

    println!("== E11: local kernel throughput (threads = {threads}, batch = {batch}) ==");
    println!(
        "{:>5} | {:>10} {:>10} {:>10} {:>12} {:>14} | {:>8}",
        "n", "per-point", "flat slab", "par", "indep x batch", "multi x batch", "flat/pp"
    );
    let pool = Pool::new(threads);
    let mut rng = StdRng::seed_from_u64(1006);
    for n in [96usize, 160, 256] {
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.013).sin() + 0.2).collect();
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|i| ((i * 3 + v + 1) as f64 * 0.017).sin()).collect())
            .collect();
        let ((y_ref, c_ref), t_ref) = time(|| sttsv_sym_ref(&tensor, &x));
        let ((y_flat, c_flat), t_flat) = time(|| sttsv_sym(&tensor, &x));
        let ((y_par, _), t_par) = time(|| sttsv_sym_par(&tensor, &x, &pool));
        let ((ys_ind, _), t_ind) =
            time(|| (xs.iter().map(|x| sttsv_sym(&tensor, x)).collect::<Vec<_>>(), ()));
        let ((ys_multi, c_multi), t_multi) = time(|| sttsv_sym_multi(&tensor, &xs));
        let (_, t_par_multi) = time(|| sttsv_sym_par_multi(&tensor, &xs, &pool));

        // Agreement and exact paper op counts.
        let n64 = n as u64;
        assert_eq!(c_ref.ternary_mults, n64 * n64 * (n64 + 1) / 2);
        assert_eq!(c_flat.ternary_mults, c_ref.ternary_mults);
        assert_eq!(c_multi.ternary_mults, batch as u64 * c_ref.ternary_mults);
        for i in 0..n {
            assert!((y_ref[i] - y_flat[i]).abs() < 1e-12 * (1.0 + y_ref[i].abs()));
            assert!((y_par[i] - y_flat[i]).abs() < 1e-12 * (1.0 + y_flat[i].abs()));
        }
        for (v, (y_one, _)) in ys_ind.iter().enumerate() {
            for i in 0..n {
                assert_eq!(y_one[i].to_bits(), ys_multi[v][i].to_bits(), "multi must be exact");
            }
        }
        println!(
            "{n:>5} | {:>8.1}Me {:>8.1}Me {:>8.1}Me {:>10.1}Me {:>12.1}Me | {:>8.2}",
            rate(n, t_ref),
            rate(n, t_flat),
            rate(n, t_par),
            batch as f64 * rate(n, t_ind),
            batch as f64 * rate(n, t_multi),
            t_ref / t_flat
        );
        let _ = t_par_multi;
    }
    println!("(Me = 1e6 ternary multiplications per second, best of 3)");

    // Distributed batched STTSV: one pair of exchange phases for the whole
    // batch — same messages and rounds as a single STTSV, words × batch.
    let n = 120;
    let q = 2usize;
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let tensor = random_symmetric(n, &mut rng);
    let xs: Vec<Vec<f64>> = (0..batch.max(1))
        .map(|v| (0..n).map(|i| ((i + v) as f64 * 0.01).cos()).collect())
        .collect();
    let single = parallel_sttsv(&tensor, &part, &xs[0], Mode::Scheduled);
    let multi = parallel_sttsv_multi(&tensor, &part, &xs, Mode::Scheduled, threads);
    let (sw, mw) = (single.report.bandwidth_cost(), multi.report.bandwidth_cost());
    let (sr, mr) = (single.report.max_rounds(), multi.report.max_rounds());
    println!(
        "distributed batch (q={q}, n={n}): words {sw} -> {mw} ({}x), rounds {sr} -> {mr} (1x)",
        mw / sw
    );
    assert_eq!(mw, xs.len() as u64 * sw, "words scale with the batch");
    assert_eq!(mr, sr, "rounds must not scale with the batch");
    println!();

    if plan {
        plan_ab(threads);
    }
    if flight {
        flight_ab(threads);
    }
}

/// E16: the overlapped-exchange A/B. Runs the barrier compiled-plan path
/// and the dependency-driven overlapped path on the same problem at
/// q ∈ {2, 3}, asserts they are bit-identical (outputs, [`CostReport`]s,
/// comm matrices — overlap reorders time, not words), then replays both
/// traces under an α-β-γ model with a nonzero network flight time
/// (`link_ns`) and reports what the overlap bought: makespan, per-rank
/// gather-x recv-wait before/after, and the hidden/exposed decomposition
/// per phase. Asserts the gather-x recv-wait is strictly reduced.
///
/// All numbers are *modeled* (virtual-clock replay of a single-host
/// simulated run); the wire itself is `link_ns` of the model, not measured
/// hardware.
///
/// [`CostReport`]: symtensor_mpsim::CostReport
fn overlap_ab(threads: usize) {
    println!("== E16: overlapped exchange A/B (barrier vs pipelined compiled plan) ==");
    let model = AlphaBetaModel { alpha: 20_000.0, beta: 50.0, gamma: 1.0, link_ns: 100_000.0 };
    println!(
        "model: alpha={} beta={} gamma={} link={} (virtual ns)",
        model.alpha, model.beta, model.gamma, model.link_ns
    );
    for q in [2u64, 3] {
        let n = 40;
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let mut rng = StdRng::seed_from_u64(1016 + q);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) as f64 * 0.01).sin()).collect();

        // How early each rank's blocks can start: owned-only blocks need no
        // arrival at all, single-peer blocks unlock with one message. (With
        // shard-distributed x row blocks, owned-only is typically 0 — every
        // block waits on some piece — so single-peer is the overlap's fuel.)
        let (mut owned_only, mut single, mut multi) = (0usize, 0usize, 0usize);
        for rank in 0..part.num_procs() {
            let owned = symtensor_parallel::blocks::OwnedBlocks::extract(&tensor, &part, rank);
            let plan = symtensor_parallel::RankPlan::build(&part, &owned, rank);
            let h = plan.readiness_histogram();
            owned_only += h.0;
            single += h.1;
            multi += h.2;
        }
        let total = (owned_only + single + multi).max(1) as f64;

        let (b_run, b_traces) =
            parallel_sttsv_planned_traced(&tensor, &part, &x, Mode::Scheduled, threads);
        let (o_run, o_traces) =
            parallel_sttsv_overlapped_traced(&tensor, &part, &x, Mode::Scheduled, threads);
        assert_eq!(o_run.y, b_run.y, "overlap must not change a single output bit");
        assert_eq!(o_run.report, b_run.report, "overlap must not change the cost counters");
        let b_obs = RunObservation::new(b_run.report, b_traces);
        let o_obs = RunObservation::new(o_run.report, o_traces);
        let (b_mat, o_mat) = (b_obs.comm_matrix(), o_obs.comm_matrix());
        for src in 0..part.num_procs() {
            for dst in 0..part.num_procs() {
                assert_eq!(
                    b_mat.words(src, dst),
                    o_mat.words(src, dst),
                    "overlap must not change the comm matrix ({src}->{dst})"
                );
            }
        }

        let barrier = b_obs.replay(model);
        let overlapped = o_obs.replay_overlapped(model);
        let b_wait = barrier.phase_recv_wait_per_rank("gather-x");
        let o_wait = overlapped.phase_recv_wait_per_rank("gather-x");
        let (b_sum, o_sum) = (b_wait.iter().sum::<f64>(), o_wait.iter().sum::<f64>());
        let fmax = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);

        println!(
            "q={q} P={:<2} n={n}: makespan {:>12.0} -> {:>12.0} virtual ns ({:+.1}%)",
            part.num_procs(),
            barrier.makespan_ns,
            overlapped.makespan_ns,
            100.0 * (overlapped.makespan_ns - barrier.makespan_ns) / barrier.makespan_ns
        );
        println!(
            "  gather-x recv-wait: total {:>11.0} -> {:>9.0} ns, max/rank {:>9.0} -> {:>7.0} ns",
            b_sum,
            o_sum,
            fmax(&b_wait),
            fmax(&o_wait)
        );
        println!(
            "  block readiness: {:.0}% owned-only, {:.0}% single-peer, {:.0}% multi-peer",
            100.0 * owned_only as f64 / total,
            100.0 * single as f64 / total,
            100.0 * multi as f64 / total
        );
        println!(
            "  {:>16} | {:>12} {:>12} {:>9} {:>6} || {:>12} {:>12} {:>9} {:>6}",
            "phase", "hidden", "exposed", "compute", "frac", "hidden", "exposed", "compute", "frac"
        );
        let b_dec = barrier.overlap_decomposition();
        for o_po in overlapped.overlap_decomposition() {
            let (bh, be, bc, bf) = b_dec
                .iter()
                .find(|po| po.phase == o_po.phase)
                .map(|po| (po.hidden_ns, po.exposed_ns, po.compute_ns, po.hidden_fraction()))
                .unwrap_or((0.0, 0.0, 0.0, 0.0));
            println!(
                "  {:>16} | {:>12.0} {:>12.0} {:>9.0} {:>6.3} || {:>12.0} {:>12.0} {:>9.0} {:>6.3}",
                o_po.phase,
                bh,
                be,
                bc,
                bf,
                o_po.hidden_ns,
                o_po.exposed_ns,
                o_po.compute_ns,
                o_po.hidden_fraction()
            );
        }
        assert!(b_sum > 0.0, "barrier gather must have modeled recv-wait to hide");
        assert!(o_sum < b_sum, "overlap must strictly reduce gather-x recv-wait");
    }
    println!("  (left columns: barrier; right: overlapped. gather-x recv-wait strictly reduced)");
    println!();
}

/// E14 (`kernels --flight`): the always-on flight recorder vs recording
/// disabled — steady-state per-iteration wall time of the compiled-plan
/// batched STTSV with the default 4096-record ring in every rank vs
/// `with_flight_capacity(0)`. Outputs and [`CostReport`]s are asserted
/// bit-identical between the two configurations; the wall-clock delta
/// (single host, 10–30 oversubscribed simulated ranks, so expect noise)
/// and the recorder's own self-measured overhead are printed side by side.
///
/// [`CostReport`]: symtensor_mpsim::CostReport
fn flight_ab(threads: usize) {
    use std::time::Instant;
    use symtensor_mpsim::Universe;
    use symtensor_parallel::RankContext;

    println!("== E14: flight recorder on (ring = 4096) vs off (plan path, Mode::Scheduled) ==");
    println!(
        "{:>3} {:>4} {:>5} {:>6} | {:>12} {:>12} {:>9} | {:>12} {:>10}",
        "q", "P", "n", "batch", "on/iter", "off/iter", "delta", "self ns/rank", "records"
    );

    let mut rng = StdRng::seed_from_u64(1014);
    for q in [2u64, 3] {
        let qq = q as usize;
        let n = (qq * qq + 1) * qq * (qq + 1);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let schedule = CommSchedule::build(&part);
        for batch in [1usize, 8] {
            let xs: Vec<Vec<f64>> = (0..batch)
                .map(|v| (0..n).map(|i| ((i * 7 + v + 1) as f64 * 0.011).sin()).collect())
                .collect();

            // One measured universe run at the given ring capacity;
            // returns wall seconds plus everything needed for the
            // identical-results assertions.
            let run_once = |capacity: usize, iters: usize| {
                let t0 = Instant::now();
                let (results, report, flight) = Universe::new(part.num_procs())
                    .with_flight_capacity(capacity)
                    .run_flight(|comm| {
                        let p = comm.rank();
                        let pool = (threads > 1).then(|| symtensor_core::Pool::new(threads));
                        let mut ctx =
                            RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule))
                                .with_plan();
                        if let Some(pool) = pool.as_ref() {
                            ctx = ctx.with_pool(pool);
                        }
                        let shard_sets: Vec<Vec<Vec<f64>>> = xs
                            .iter()
                            .map(|x| {
                                part.r_set(p)
                                    .iter()
                                    .map(|&i| {
                                        let block = &x[part.block_range(i)];
                                        block[part.shard_range(i, p)].to_vec()
                                    })
                                    .collect()
                            })
                            .collect();
                        // Same input every iteration: the measured steady
                        // state stays numerically fixed (feeding y back in
                        // would cube the magnitudes into overflow).
                        let mut last = Vec::new();
                        for _ in 0..iters {
                            let (ys, _) = ctx.sttsv_multi(comm, &shard_sets);
                            last = ys;
                        }
                        last
                    });
                (t0.elapsed().as_secs_f64(), results, report, flight)
            };

            // Same short/long differencing as E12 to cancel setup cost.
            let (lo, hi) = (2usize, 12);
            let span = (hi - lo) as f64;
            let measure = |capacity: usize| {
                let best = |iters: usize| {
                    let (t1, results, report, flight) = run_once(capacity, iters);
                    let (t2, _, _, _) = run_once(capacity, iters);
                    (t1.min(t2), results, report, flight)
                };
                let (t_lo, _, _, _) = best(lo);
                let (t_hi, results, report, flight) = best(hi);
                (((t_hi - t_lo).max(0.0) / span) * 1e9, results, report, flight)
            };
            let (on_ns, on_results, on_report, on_flight) = measure(4096);
            let (off_ns, off_results, off_report, off_flight) = measure(0);

            // The recorder must be invisible in everything but the window.
            assert_eq!(on_report, off_report, "recorder must not change the CostReport");
            for (p, (a, b)) in on_results.iter().zip(&off_results).enumerate() {
                assert_eq!(a, b, "rank {p}: recorder-on outputs must be bit-identical");
            }
            assert!(off_flight.iter().all(|s| s.events.is_empty() && s.overhead.recorded == 0));
            let self_ns: u64 = on_flight.iter().map(|s| s.overhead.overhead_ns).sum();
            let recorded: u64 = on_flight.iter().map(|s| s.overhead.recorded).sum();
            println!(
                "{q:>3} {:>4} {n:>5} {batch:>6} | {:>10.0}ns {:>10.0}ns {:>8.1}% | {:>12.0} {:>10}",
                part.num_procs(),
                on_ns,
                off_ns,
                (on_ns - off_ns) / off_ns.max(1.0) * 100.0,
                self_ns as f64 / part.num_procs() as f64,
                recorded,
            );
        }
    }
    println!(
        "(outputs and CostReports bit-identical on vs off ✓; wall-clock delta is single-host \
         noise-bound, the recorder's self-measured cost is the `self ns/rank` column)"
    );
    println!();
}

/// E12 (`kernels --plan`): compiled rank plans vs the legacy per-call hot
/// path — steady-state time and heap allocations per iterated distributed
/// STTSV. Setup (universe spawn, block extraction, plan compilation) is
/// subtracted by differencing a short and a long run of the same
/// configuration, so the numbers are the per-iteration steady state.
fn plan_ab(threads: usize) {
    use std::time::Instant;
    use symtensor_mpsim::Universe;
    use symtensor_parallel::RankContext;

    println!("== E12: compiled rank plans vs legacy hot path (Mode::Scheduled) ==");
    println!(
        "{:>3} {:>4} {:>5} {:>6} | {:>12} {:>12} {:>8} | {:>11} {:>11}",
        "q", "P", "n", "batch", "legacy/iter", "plan/iter", "speedup", "allocs/it", "plan a/it"
    );

    let mut rng = StdRng::seed_from_u64(1012);
    for q in [2u64, 3, 4] {
        let qq = q as usize;
        let n = (qq * qq + 1) * qq * (qq + 1);
        let part = TetraPartition::new(spherical(q), n).unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let schedule = CommSchedule::build(&part);
        for batch in [1usize, 8] {
            let xs: Vec<Vec<f64>> = (0..batch)
                .map(|v| (0..n).map(|i| ((i * 7 + v + 1) as f64 * 0.011).sin()).collect())
                .collect();

            // One measured universe run: `iters` batched STTSV iterations
            // feeding y back in as the next x. Returns (secs, heap allocs).
            let run_once = |use_plan: bool, iters: usize| -> (f64, u64) {
                let a0 = alloc_counter::count();
                let t0 = Instant::now();
                let (_, report) = Universe::new(part.num_procs()).run(|comm| {
                    let p = comm.rank();
                    let pool = (threads > 1).then(|| symtensor_core::Pool::new(threads));
                    let mut ctx =
                        RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule));
                    if use_plan {
                        ctx = ctx.with_plan();
                    }
                    if let Some(pool) = pool.as_ref() {
                        ctx = ctx.with_pool(pool);
                    }
                    let mut shard_sets: Vec<Vec<Vec<f64>>> = xs
                        .iter()
                        .map(|x| {
                            part.r_set(p)
                                .iter()
                                .map(|&i| {
                                    let block = &x[part.block_range(i)];
                                    block[part.shard_range(i, p)].to_vec()
                                })
                                .collect()
                        })
                        .collect();
                    for _ in 0..iters {
                        let (ys, _) = ctx.sttsv_multi(comm, &shard_sets);
                        shard_sets = ys;
                    }
                });
                let secs = t0.elapsed().as_secs_f64();
                assert!(report.bandwidth_cost() > 0);
                (secs, alloc_counter::count() - a0)
            };

            // Difference a short and a long run to cancel setup cost,
            // taking the best of two runs at each length to damp
            // scheduling noise (68 simulated ranks share this machine's
            // cores).
            let (lo, hi) = (2usize, 12);
            let span = (hi - lo) as f64;
            let measure = |use_plan: bool| -> (f64, f64) {
                let best = |iters: usize| -> (f64, u64) {
                    let (t1, a1) = run_once(use_plan, iters);
                    let (t2, a2) = run_once(use_plan, iters);
                    (t1.min(t2), a1.min(a2))
                };
                let (t_lo, a_lo) = best(lo);
                let (t_hi, a_hi) = best(hi);
                (((t_hi - t_lo).max(0.0) / span) * 1e9, (a_hi - a_lo) as f64 / span)
            };
            let (legacy_ns, legacy_allocs) = measure(false);
            let (plan_ns, plan_allocs) = measure(true);
            println!(
                "{q:>3} {:>4} {n:>5} {batch:>6} | {:>10.0}ns {:>10.0}ns {:>8.2} | {legacy_allocs:>11.0} {plan_allocs:>11.0}",
                part.num_procs(),
                legacy_ns,
                plan_ns,
                legacy_ns / plan_ns.max(1.0),
            );
            assert!(
                plan_allocs < legacy_allocs,
                "the plan must allocate strictly less per iteration"
            );
        }
    }
    println!(
        "(per-iteration steady state, setup differenced out; allocs include the simulated \
         transport's channel nodes, which both paths pay)"
    );
    println!();
}

/// Ablation: matching-based diagonal assignment (the paper's §6.1.3) vs
/// least-loaded greedy.
fn ablation() {
    use symtensor_parallel::ablation::GreedyDiagonals;
    println!("== Ablation: diagonal-block assignment (matching vs greedy) ==");
    println!(
        "{:>8} {:>5} | {:>14} {:>18} {:>14}",
        "system", "P", "matching |N_p|", "greedy |N_p| range", "greedy max D_p"
    );
    for (label, system, d) in [
        ("q=2", spherical(2), 2usize),
        ("q=3", spherical(3), 3),
        ("SQS(8)", symtensor_steiner::sqs8(), 4),
    ] {
        let greedy = GreedyDiagonals::assign(&system);
        assert!(greedy.verify_compatibility(&system));
        println!(
            "{label:>8} {:>5} | {:>14} {:>18} {:>14}",
            system.num_blocks(),
            format!("= {d}"),
            format!("[{}, {}]", greedy.min_non_central(), greedy.max_non_central()),
            greedy.max_central()
        );
    }
    println!("(the matching guarantees perfect balance; greedy only approximates it)");
    println!();
}

/// Extension: the 2-D (matrix) triangle scheme next to the 3-D tetrahedral
/// one — both meet their respective lower bounds' leading terms, with the
/// P-scaling moving from P^{1/2} to P^{1/3}.
fn triangle() {
    use symtensor_core::symmat::{random_symmetric_matrix, symv_sym};
    use symtensor_parallel::triangle::{
        parallel_symv, symv_lower_bound, symv_words_per_vector, TrianglePartition,
    };
    println!("== 2-D vs 3-D: triangle (SYMV) next to tetrahedral (STTSV) ==");
    println!(
        "{:>4} {:>5} {:>6} | {:>12} {:>12} {:>8}",
        "q", "P", "n", "measured", "2-D bound", "ratio"
    );
    let mut rng = StdRng::seed_from_u64(1005);
    for q in [2usize, 3, 4] {
        let m = q * q + q + 1;
        let n = m * (q + 1) * 2;
        let part = TrianglePartition::new(q as u64, n).unwrap();
        part.verify().unwrap();
        let matrix = random_symmetric_matrix(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos()).collect();
        let run = parallel_symv(&matrix, &part, &x);
        let (y_ref, _) = symv_sym(&matrix, &x);
        for (got, want) in run.y.iter().zip(&y_ref) {
            assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
        let lb = symv_lower_bound(n, part.num_procs());
        let measured = run.report.bandwidth_cost() as f64;
        println!(
            "{q:>4} {:>5} {n:>6} | {measured:>12.0} {lb:>12.1} {:>8.3}",
            part.num_procs(),
            measured / lb
        );
        assert_eq!(measured as usize, 2 * symv_words_per_vector(n, q));
        assert!(measured >= lb * 0.999);
    }
    println!("(2-D comm scales as n/P^(1/2); the paper's 3-D scheme as n/P^(1/3))");
    println!();
}
