//! Parameter-sweep driver emitting JSON records for plotting/analysis:
//! measured communication, work and schedule data across `q` and `n`.
//!
//! Usage: `sweep [output.json]` — writes a JSON array; defaults to stdout.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use symtensor_core::generate::random_symmetric;
use symtensor_parallel::baselines::{baseline_1d_words, baseline_3d_words};
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{bounds, parallel_sttsv, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let mut records = Vec::new();
    let mut rng = StdRng::seed_from_u64(2024);

    // Measured sweep: q ∈ {2, 3}, several scales, all three modes.
    for q in [2usize, 3] {
        let p = bounds::spherical_procs(q);
        let unit = (q * q + 1) * q * (q + 1);
        for scale in [1usize, 2, 4] {
            let n = unit * scale;
            let part = TetraPartition::new(spherical(q as u64), n).unwrap();
            let tensor = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
            for (label, mode) in [
                ("scheduled", Mode::Scheduled),
                ("alltoall_padded", Mode::AllToAllPadded),
                ("alltoall_sparse", Mode::AllToAllSparse),
            ] {
                let run = parallel_sttsv(&tensor, &part, &x, mode);
                records.push(json!({
                    "kind": "measured",
                    "q": q, "P": p, "n": n, "mode": label,
                    "max_words": run.report.bandwidth_cost(),
                    "total_words": run.report.total_words_sent(),
                    "max_rounds": run.report.max_rounds(),
                    "max_msgs": run.report.max_msgs_sent(),
                    "lower_bound": bounds::lower_bound_words(n, p),
                    "max_ternary": run.ternary_per_rank.iter().max(),
                    "ideal_ternary": bounds::comp_cost_leading(n, p),
                }));
            }
        }
    }

    // Model sweep: larger q via validated closed forms.
    for q in [4usize, 5, 7, 9, 11, 13] {
        let p = bounds::spherical_procs(q);
        let unit = (q * q + 1) * q * (q + 1);
        let n = unit * 4;
        let g = (p as f64).cbrt().round() as usize;
        records.push(json!({
            "kind": "model",
            "q": q, "P": p, "n": n,
            "scheduled_words": bounds::scheduled_words_total(n, q),
            "alltoall_words": bounds::alltoall_words_total(n, q),
            "lower_bound": bounds::lower_bound_words(n, p),
            "baseline_3d_words": baseline_3d_words(n, g),
            "baseline_1d_words": baseline_1d_words(n, p),
            "schedule_rounds": spherical_round_count(q),
        }));
    }

    let out = serde_json::to_string_pretty(&records).expect("serialize");
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &out).expect("write output file");
            eprintln!("wrote {} records to {path}", records.len());
        }
        None => println!("{out}"),
    }
}
