//! Parameter-sweep driver emitting JSON records for plotting/analysis:
//! measured communication, work and schedule data across `q` and `n`.
//!
//! Usage: `sweep [output.json] [--trace t.json] [--metrics m.json]`
//!
//! Writes a JSON array of records (defaults to stdout). With
//! `--trace`/`--metrics` every measured run is re-run traced and the
//! observability outputs (Perfetto trace, per-phase metrics, comm matrix,
//! round occupancy) are written alongside.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cli::obsout::ObsSink;
use symtensor_core::generate::random_symmetric;
use symtensor_obs::json::Value;
use symtensor_obs::RunObservation;
use symtensor_parallel::baselines::{baseline_1d_words, baseline_3d_words};
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{bounds, parallel_sttsv, parallel_sttsv_traced, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let (sink, rest) = ObsSink::from_args(std::env::args().skip(1));
    let mut records: Vec<Value> = Vec::new();
    let mut rng = StdRng::seed_from_u64(2024);

    // Measured sweep: q ∈ {2, 3}, several scales, all three modes.
    for q in [2usize, 3] {
        let p = bounds::spherical_procs(q);
        let unit = (q * q + 1) * q * (q + 1);
        for scale in [1usize, 2, 4] {
            let n = unit * scale;
            let part = TetraPartition::new(spherical(q as u64), n).unwrap();
            let tensor = random_symmetric(n, &mut rng);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
            for (label, mode) in [
                ("scheduled", Mode::Scheduled),
                ("alltoall_padded", Mode::AllToAllPadded),
                ("alltoall_sparse", Mode::AllToAllSparse),
            ] {
                let run = if sink.enabled() {
                    let (run, traces) = parallel_sttsv_traced(&tensor, &part, &x, mode);
                    sink.record(
                        format!("sweep q={q} n={n} {label}"),
                        RunObservation::new(run.report.clone(), traces),
                    );
                    run
                } else {
                    parallel_sttsv(&tensor, &part, &x, mode)
                };
                records.push(
                    Value::object()
                        .with("kind", "measured")
                        .with("q", q)
                        .with("P", p)
                        .with("n", n)
                        .with("mode", label)
                        .with("max_words", run.report.bandwidth_cost())
                        .with("total_words", run.report.total_words_sent())
                        .with("max_rounds", run.report.max_rounds())
                        .with("max_msgs", run.report.max_msgs_sent())
                        .with("lower_bound", bounds::lower_bound_words(n, p))
                        .with("max_ternary", *run.ternary_per_rank.iter().max().unwrap())
                        .with("ideal_ternary", bounds::comp_cost_leading(n, p)),
                );
            }
        }
    }

    // Model sweep: larger q via validated closed forms.
    for q in [4usize, 5, 7, 9, 11, 13] {
        let p = bounds::spherical_procs(q);
        let unit = (q * q + 1) * q * (q + 1);
        let n = unit * 4;
        let g = (p as f64).cbrt().round() as usize;
        records.push(
            Value::object()
                .with("kind", "model")
                .with("q", q)
                .with("P", p)
                .with("n", n)
                .with("scheduled_words", bounds::scheduled_words_total(n, q))
                .with("alltoall_words", bounds::alltoall_words_total(n, q))
                .with("lower_bound", bounds::lower_bound_words(n, p))
                .with("baseline_3d_words", baseline_3d_words(n, g))
                .with("baseline_1d_words", baseline_1d_words(n, p))
                .with("schedule_rounds", spherical_round_count(q)),
        );
    }

    // Continuous model sweep: the f64 closed-form twins evaluate the cost
    // model at dimensions the integer formulas reject (no divisibility by
    // (q²+1) / λ₁ required) — e.g. power-of-two n for plotting smooth
    // curves through the exact points above.
    for q in [2usize, 3, 5, 7] {
        let p = bounds::spherical_procs(q);
        for n in [1000usize, 4096, 100_000] {
            records.push(
                Value::object()
                    .with("kind", "model_f64")
                    .with("q", q)
                    .with("P", p)
                    .with("n", n)
                    .with(
                        "scheduled_words_per_vector",
                        bounds::scheduled_words_per_vector_f64(n, q),
                    )
                    .with("scheduled_words", bounds::scheduled_words_total_f64(n, q))
                    .with("alltoall_words", bounds::alltoall_words_total_f64(n, q))
                    .with("lower_bound", bounds::lower_bound_words(n, p)),
            );
        }
    }

    let count = records.len();
    let out = Value::Array(records).to_string_pretty();
    match rest.first() {
        Some(path) => {
            std::fs::write(path, &out).expect("write output file");
            eprintln!("wrote {count} records to {path}");
        }
        None => println!("{out}"),
    }
    sink.flush();
}
