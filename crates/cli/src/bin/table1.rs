//! Regenerates the paper's **Table 1**: processor sets (R_p, N_p, D_p) of
//! the tetrahedral block partition for m = 10 row blocks and P = 30
//! processors, built from a Steiner (10, 4, 3) system (the spherical system
//! of PGL₂(9), q = 3).
//!
//! The constructed system is isomorphic to the paper's (Steiner systems are
//! unique only up to relabeling), so rows match Table 1 up to a permutation
//! of point labels; all structural invariants (|R_p| = 4, |N_p| = 3,
//! exactly 10 processors holding a D_p block) are identical.

use symtensor_cli::render_processor_table;
use symtensor_parallel::TetraPartition;
use symtensor_steiner::spherical;

fn main() {
    let q = 3u64;
    let system = spherical(q);
    system.verify().expect("Steiner (10,4,3) verification");
    // Any n divisible by m·λ₁ works; the table is independent of n.
    let part = TetraPartition::new(system, 120).expect("partition");
    println!(
        "Table 1: processor sets of the tetrahedral block partition (m = {}, P = {})",
        part.num_row_blocks(),
        part.num_procs()
    );
    println!("Steiner (10, 4, 3) system from PGL2(9) acting on PG(1, 9); q = {q}.");
    println!();
    print!("{}", render_processor_table(&part));
    println!();
    println!(
        "Invariants: |R_p| = q+1 = {}, |N_p| = q = {}, central blocks assigned = {} of {} processors.",
        q + 1,
        q,
        (0..part.num_procs()).filter(|&p| part.d_set(p).is_some()).count(),
        part.num_procs()
    );
    part.verify().expect("partition invariants");
    println!("Partition verified: every lower-tetrahedron block owned exactly once,");
    println!("all diagonal assignments compatible with R_p (no extra vector data needed).");
}
