//! Regenerates the paper's **Table 2**: the row-block sets Q_i (processors
//! among which row block i of each vector is distributed) for the m = 10,
//! P = 30 tetrahedral partition of Table 1.

use symtensor_cli::render_rowblock_table;
use symtensor_parallel::TetraPartition;
use symtensor_steiner::spherical;

fn main() {
    let part = TetraPartition::new(spherical(3), 120).expect("partition");
    println!(
        "Table 2: row block sets of the tetrahedral block partition (m = {}, P = {})",
        part.num_row_blocks(),
        part.num_procs()
    );
    println!("Row block i of a vector is evenly distributed among the processors of Q_i.");
    println!();
    print!("{}", render_rowblock_table(&part));
    println!();
    println!("Invariant (Lemma 6.4): every |Q_i| = q(q+1) = {} processors.", part.lambda1());
    for i in 0..part.num_row_blocks() {
        assert_eq!(part.q_set(i).len(), part.lambda1());
    }
    println!("Verified.");
}
