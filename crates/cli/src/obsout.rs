//! `--trace` / `--metrics` output plumbing shared by the `experiment`,
//! `sweep` and `trace` binaries.
//!
//! A binary strips the two flags from its argument list with
//! [`ObsSink::from_args`], passes the sink down to whatever runs it
//! executes, and calls [`ObsSink::flush`] once at the end:
//!
//! * `--trace <out.json>` — one Perfetto-loadable Chrome trace document
//!   containing every recorded run as its own named process (one thread
//!   track per simulated rank).
//! * `--metrics <out.json>` — a flat metrics JSON keyed by run label:
//!   the metrics-registry dump (cost counters, message-size and per-round
//!   histograms, per-phase word totals) plus the P×P communication matrix
//!   and the round-occupancy report.
//!
//! When neither flag is present the sink is disabled and recording is a
//! no-op, so binaries can call [`ObsSink::record`] unconditionally.

use std::cell::RefCell;
use symtensor_obs::json::Value;
use symtensor_obs::{chrome_trace_multi, RunObservation};

/// Collects labeled [`RunObservation`]s and writes them to the paths given
/// on the command line.
pub struct ObsSink {
    trace_path: Option<String>,
    metrics_path: Option<String>,
    runs: RefCell<Vec<(String, RunObservation)>>,
}

impl ObsSink {
    /// Splits `--trace <path>` and `--metrics <path>` out of a raw argument
    /// list, returning the sink and the remaining (positional) arguments.
    ///
    /// # Panics
    /// Panics (after printing usage to stderr) when either flag is missing
    /// its path argument.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> (ObsSink, Vec<String>) {
        let mut trace_path = None;
        let mut metrics_path = None;
        let mut rest = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--trace" => match iter.next() {
                    Some(path) => trace_path = Some(path),
                    None => missing_value("--trace"),
                },
                "--metrics" => match iter.next() {
                    Some(path) => metrics_path = Some(path),
                    None => missing_value("--metrics"),
                },
                _ => rest.push(arg),
            }
        }
        (ObsSink { trace_path, metrics_path, runs: RefCell::new(Vec::new()) }, rest)
    }

    /// A disabled sink (records nothing, writes nothing).
    pub fn disabled() -> ObsSink {
        ObsSink { trace_path: None, metrics_path: None, runs: RefCell::new(Vec::new()) }
    }

    /// Whether either output was requested — callers use this to decide
    /// between the plain and `_traced` run variants.
    pub fn enabled(&self) -> bool {
        self.trace_path.is_some() || self.metrics_path.is_some()
    }

    /// Stores one run's observation under `label`. No-op when disabled.
    pub fn record(&self, label: impl Into<String>, obs: RunObservation) {
        if self.enabled() {
            self.runs.borrow_mut().push((label.into(), obs));
        }
    }

    /// Number of runs recorded so far.
    pub fn len(&self) -> usize {
        self.runs.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the requested files (reporting each on stderr). Call once,
    /// after all runs completed.
    ///
    /// # Panics
    /// Panics if a recorded run's trace-derived comm-matrix marginals
    /// disagree with its hot-path `CostReport` (the tracer dropped events)
    /// or if a file cannot be written.
    pub fn flush(&self) {
        if !self.enabled() {
            return;
        }
        let runs = self.runs.borrow();
        if let Some(path) = &self.trace_path {
            let labeled: Vec<(String, Vec<Vec<symtensor_mpsim::CommEvent>>)> =
                runs.iter().map(|(label, obs)| (label.clone(), obs.traces.clone())).collect();
            let doc = chrome_trace_multi(&labeled);
            std::fs::write(path, doc.to_string_pretty()).expect("write --trace file");
            eprintln!("wrote Perfetto trace ({} runs) to {path}", runs.len());
        }
        if let Some(path) = &self.metrics_path {
            let mut doc = Value::object();
            for (label, obs) in runs.iter() {
                let entry = Value::object()
                    .with("metrics", obs.metrics().to_json())
                    .with("comm_matrix", obs.comm_matrix().to_json())
                    .with("occupancy", obs.occupancy().to_json());
                doc.set(label.clone(), entry);
            }
            std::fs::write(path, doc.to_string_pretty()).expect("write --metrics file");
            eprintln!("wrote metrics ({} runs) to {path}", runs.len());
        }
    }
}

fn missing_value(flag: &str) -> ! {
    eprintln!("{flag} requires a file path argument");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_are_stripped_and_positionals_kept() {
        let (sink, rest) =
            ObsSink::from_args(args(&["all", "--trace", "t.json", "--metrics", "m.json", "x"]));
        assert!(sink.enabled());
        assert_eq!(rest, vec!["all".to_string(), "x".to_string()]);
    }

    #[test]
    fn no_flags_disables_sink() {
        let (sink, rest) = ObsSink::from_args(args(&["comm"]));
        assert!(!sink.enabled());
        assert_eq!(rest, vec!["comm".to_string()]);
        // Recording into a disabled sink is a no-op.
        let (_, report, traces) = symtensor_mpsim::Universe::new(1).run_traced(|_| ());
        sink.record("x", RunObservation::new(report, traces));
        assert!(sink.is_empty());
        sink.flush(); // writes nothing
    }
}
