#![warn(missing_docs)]
//! Shared helpers for the table/figure regeneration binaries.
//!
//! The binaries (`table1`, `table2`, `table3`, `figure1`, `experiment`)
//! regenerate every table and figure of the paper; see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for paper-vs-measured records.

use symtensor_parallel::tetra::BlockIdx;
use symtensor_parallel::TetraPartition;

pub mod obsout;

/// Formats a set of 0-based indices as the paper's 1-based `{a,b,c}` sets.
pub fn fmt_set(set: &[usize]) -> String {
    let inner: Vec<String> = set.iter().map(|&x| (x + 1).to_string()).collect();
    format!("{{{}}}", inner.join(","))
}

/// Formats a block triple as the paper's 1-based `(i,j,k)`.
pub fn fmt_block(blk: &BlockIdx) -> String {
    format!("({},{},{})", blk.i + 1, blk.j + 1, blk.k + 1)
}

/// Formats a list of block triples.
pub fn fmt_blocks(blocks: &[BlockIdx]) -> String {
    let inner: Vec<String> = blocks.iter().map(fmt_block).collect();
    format!("{{{}}}", inner.join(", "))
}

/// Renders the paper's Table 1 / Table 3 layout (p, R_p, N_p, D_p) for any
/// partition.
pub fn render_processor_table(part: &TetraPartition) -> String {
    let mut out = String::new();
    out.push_str("  p | R_p              | N_p                                   | D_p\n");
    out.push_str("----+------------------+---------------------------------------+---------\n");
    for p in 0..part.num_procs() {
        let d = match part.d_set(p) {
            Some(i) => format!("{{({0},{0},{0})}}", i + 1),
            None => "{}".to_string(),
        };
        out.push_str(&format!(
            "{:3} | {:16} | {:37} | {}\n",
            p + 1,
            fmt_set(part.r_set(p)),
            fmt_blocks(part.n_set(p)),
            d
        ));
    }
    out
}

/// Renders the paper's Table 2 layout (i, Q_i).
pub fn render_rowblock_table(part: &TetraPartition) -> String {
    let mut out = String::new();
    out.push_str("  i | Q_i\n");
    out.push_str("----+------------------------------------------\n");
    for i in 0..part.num_row_blocks() {
        let q: Vec<usize> = part.q_set(i).to_vec();
        out.push_str(&format!("{:3} | {}\n", i + 1, fmt_set(&q)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use symtensor_steiner::sqs8;

    #[test]
    fn set_formatting_is_one_based() {
        assert_eq!(fmt_set(&[0, 3, 7]), "{1,4,8}");
        assert_eq!(fmt_block(&BlockIdx { i: 2, j: 1, k: 0 }), "(3,2,1)");
    }

    #[test]
    fn tables_render_for_sqs8() {
        let part = TetraPartition::new(sqs8(), 56).unwrap();
        let t1 = render_processor_table(&part);
        assert!(t1.contains("{1,2,3,4}"));
        assert_eq!(t1.lines().count(), 2 + 14);
        let t2 = render_rowblock_table(&part);
        assert_eq!(t2.lines().count(), 2 + 8);
    }
}
