//! Collective operations built from point-to-point messages.
//!
//! Algorithms follow the standard MPI implementations (Thakur, Rabenseifner
//! & Gropp 2005, cited by the paper for the All-to-All cost model):
//!
//! * [`Comm::all_to_all_v`] — pairwise exchange, `P − 1` steps; this is the
//!   collective Algorithm 5 uses, whose bandwidth-optimal implementation the
//!   paper charges `P − 1` rounds,
//! * [`Comm::all_gather`] — ring, `P − 1` steps, each rank moves
//!   `total − own` words,
//! * [`Comm::reduce_scatter`] — pairwise exchange with on-the-fly reduction,
//! * [`Comm::all_reduce`] / [`Comm::broadcast`] / [`Comm::gather`] — simple
//!   star algorithms; used only for tiny payloads (norms, convergence flags)
//!   where the asymmetric root cost is irrelevant.
//!
//! All collectives must be called by **every** rank with consistent
//! arguments; mismatches surface as [`crate::CommError::Timeout`].

use crate::comm::{Comm, CommError};

/// Events delivered (in order) by [`Comm::all_to_all_v_overlapped`]'s
/// callback: one `SendsPosted` once every outgoing buffer is in flight,
/// then `P − 1` `Arrival`s in completion order.
#[derive(Debug)]
pub enum AllToAllEvent {
    /// All sends have been posted; the drain is about to begin. Overlap
    /// work started here does not delay any outgoing message.
    SendsPosted,
    /// One peer's buffer arrived (completion order, not rank order).
    Arrival {
        /// Source rank.
        src: usize,
        /// The delivered buffer.
        buf: Vec<f64>,
    },
}

/// Tag namespaces so collectives cannot collide with user tags. Per-pair
/// FIFO ordering makes tag reuse across successive collectives safe.
const TAG_ALL_TO_ALL: u64 = 1 << 48;
const TAG_ALL_GATHER: u64 = 2 << 48;
const TAG_REDUCE_SCATTER: u64 = 3 << 48;
const TAG_STAR: u64 = 4 << 48;

impl Comm {
    /// `recv` for collective steps: the first rank whose receive fails
    /// trips the universe's shared abort flag ([`Comm::fail_fast`]) before
    /// propagating the error, so every other participant blocked inside
    /// the deserted collective returns `Err` within one abort-poll
    /// interval instead of waiting out its own full timeout.
    fn recv_or_abort(&self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let out = self.recv(src, tag);
        if out.is_err() {
            self.fail_fast();
        }
        out
    }

    /// Personalized all-to-all: rank `r` sends `sendbufs[d]` to rank `d` and
    /// returns `recv` with `recv[s]` = the buffer rank `s` addressed to `r`.
    /// Buffers may be empty and of varying sizes (the "v" variant).
    ///
    /// Pairwise-exchange algorithm: `P − 1` steps; at step `s`, rank `r`
    /// sends to `(r + s) mod P` and receives from `(r − s) mod P`.
    ///
    /// Each step is round-annotated (`round = s − 1`, i.e. `0..P−1`) so
    /// traced collective traffic participates in round-occupancy reports
    /// and the happens-before DAG built by [`crate::matching`] — the
    /// All-to-All modes of Algorithm 5 are thereby as analyzable as the
    /// edge-colored schedule. Any enclosing round annotation is saved and
    /// restored.
    pub fn all_to_all_v(&self, mut sendbufs: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, CommError> {
        self.with_fallback_phase("coll:all-to-all", || {
            let p = self.size();
            assert_eq!(sendbufs.len(), p, "all_to_all_v needs one buffer per rank");
            let rank = self.rank();
            let saved = self.current_round();
            let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
            recv[rank] = std::mem::take(&mut sendbufs[rank]);
            let mut run_steps = || -> Result<(), CommError> {
                for step in 1..p {
                    self.annotate_round(step as u64 - 1);
                    let dst = (rank + step) % p;
                    let src = (rank + p - step) % p;
                    self.send(
                        dst,
                        TAG_ALL_TO_ALL + step as u64,
                        std::mem::take(&mut sendbufs[dst]),
                    );
                    recv[src] = self.recv_or_abort(src, TAG_ALL_TO_ALL + step as u64)?;
                    self.count_round();
                }
                Ok(())
            };
            let outcome = run_steps();
            match saved {
                Some(r) => self.annotate_round(r),
                None => self.clear_round(),
            }
            outcome?;
            Ok(recv)
        })
    }

    /// [`Comm::all_to_all_v`] with **completion-order delivery**: posts
    /// every step's send up-front (round-annotated like the barrier form),
    /// then drains the `P − 1` incoming messages with [`Comm::recv_any`],
    /// handing the callback one [`AllToAllEvent::SendsPosted`] followed by
    /// the [`AllToAllEvent::Arrival`]s in whatever order the messages
    /// land — so the caller can compute on whichever peer's data arrives
    /// first. Word,
    /// message and round accounting are identical to
    /// [`Comm::all_to_all_v`] (rounds count up with each completed
    /// arrival, matching the barrier form's per-step counting under
    /// failures); only the completion order — and hence wall-clock —
    /// differs. The self buffer `sendbufs[rank]` is neither sent nor
    /// delivered; the drained buffer shell is returned for recycling.
    pub fn all_to_all_v_overlapped(
        &self,
        mut sendbufs: Vec<Vec<f64>>,
        mut on_event: impl FnMut(AllToAllEvent),
    ) -> Result<Vec<Vec<f64>>, CommError> {
        self.with_fallback_phase("coll:all-to-all", || {
            let p = self.size();
            assert_eq!(sendbufs.len(), p, "all_to_all_v_overlapped needs one buffer per rank");
            let rank = self.rank();
            let saved = self.current_round();
            for step in 1..p {
                self.annotate_round(step as u64 - 1);
                let dst = (rank + step) % p;
                self.send(dst, TAG_ALL_TO_ALL + step as u64, std::mem::take(&mut sendbufs[dst]));
            }
            match saved {
                Some(r) => self.annotate_round(r),
                None => self.clear_round(),
            }
            on_event(AllToAllEvent::SendsPosted);
            let mut candidates: Vec<(usize, u64)> =
                (1..p).map(|step| ((rank + p - step) % p, TAG_ALL_TO_ALL + step as u64)).collect();
            while !candidates.is_empty() {
                match self.recv_any(&candidates) {
                    Ok((src, tag, buf)) => {
                        candidates.retain(|&c| c != (src, tag));
                        on_event(AllToAllEvent::Arrival { src, buf });
                        self.count_round();
                    }
                    Err(err) => {
                        self.fail_fast();
                        return Err(err);
                    }
                }
            }
            Ok(sendbufs)
        })
    }

    /// All-gather: returns `out` with `out[r]` = rank `r`'s `local`
    /// contribution, on every rank. Ring algorithm, `P − 1` steps.
    pub fn all_gather(&self, local: Vec<f64>) -> Result<Vec<Vec<f64>>, CommError> {
        self.with_fallback_phase("coll:all-gather", || {
            let p = self.size();
            let rank = self.rank();
            let mut out: Vec<Option<Vec<f64>>> = vec![None; p];
            out[rank] = Some(local);
            if p > 1 {
                let next = (rank + 1) % p;
                let prev = (rank + p - 1) % p;
                for step in 0..p - 1 {
                    // Forward the block that originated at (rank - step) mod p.
                    let fwd_origin = (rank + p - step) % p;
                    let block = out[fwd_origin].clone().expect("ring invariant");
                    self.send(next, TAG_ALL_GATHER + step as u64, block);
                    let recv_origin = (rank + p - step - 1) % p;
                    out[recv_origin] =
                        Some(self.recv_or_abort(prev, TAG_ALL_GATHER + step as u64)?);
                    self.count_round();
                }
            }
            Ok(out.into_iter().map(Option::unwrap).collect())
        })
    }

    /// Reduce-scatter: rank `r` contributes `contribs[d]` toward rank `d`'s
    /// result and returns `Σ_s contribs_s[r]` (element-wise). All
    /// contributions toward a given rank must have equal length. Pairwise
    /// exchange, `P − 1` steps; the accumulation order is fixed by the
    /// schedule, so results are deterministic across runs.
    pub fn reduce_scatter(&self, mut contribs: Vec<Vec<f64>>) -> Result<Vec<f64>, CommError> {
        self.with_fallback_phase("coll:reduce-scatter", || {
            let p = self.size();
            assert_eq!(contribs.len(), p, "reduce_scatter needs one contribution per rank");
            let rank = self.rank();
            let mut acc = std::mem::take(&mut contribs[rank]);
            for step in 1..p {
                let dst = (rank + step) % p;
                let src = (rank + p - step) % p;
                self.send(
                    dst,
                    TAG_REDUCE_SCATTER + step as u64,
                    std::mem::take(&mut contribs[dst]),
                );
                let piece = self.recv_or_abort(src, TAG_REDUCE_SCATTER + step as u64)?;
                assert_eq!(
                    piece.len(),
                    acc.len(),
                    "reduce_scatter length mismatch from rank {src}"
                );
                for (a, b) in acc.iter_mut().zip(&piece) {
                    *a += b;
                }
                self.count_round();
            }
            Ok(acc)
        })
    }

    /// All-reduce (element-wise sum): star algorithm through rank 0 with a
    /// deterministic rank-ascending summation order. Intended for small
    /// payloads only.
    pub fn all_reduce(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        self.with_fallback_phase("coll:all-reduce", || {
            let p = self.size();
            if p == 1 {
                return Ok(local);
            }
            let rank = self.rank();
            if rank == 0 {
                let mut acc = local;
                for src in 1..p {
                    let piece = self.recv_or_abort(src, TAG_STAR)?;
                    assert_eq!(
                        piece.len(),
                        acc.len(),
                        "all_reduce length mismatch from rank {src}"
                    );
                    for (a, b) in acc.iter_mut().zip(&piece) {
                        *a += b;
                    }
                }
                for dst in 1..p {
                    self.send(dst, TAG_STAR + 1, acc.clone());
                }
                Ok(acc)
            } else {
                self.send(0, TAG_STAR, local);
                self.recv_or_abort(0, TAG_STAR + 1)
            }
        })
    }

    /// Broadcast `data` from `root` to all ranks (star).
    pub fn broadcast(&self, root: usize, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
        self.with_fallback_phase("coll:broadcast", || {
            let rank = self.rank();
            if rank == root {
                for dst in 0..self.size() {
                    if dst != root {
                        self.send(dst, TAG_STAR + 2, data.clone());
                    }
                }
                Ok(data)
            } else {
                self.recv_or_abort(root, TAG_STAR + 2)
            }
        })
    }

    /// Gather every rank's `local` at `root`; non-root ranks get `None`.
    pub fn gather(&self, root: usize, local: Vec<f64>) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        self.with_fallback_phase("coll:gather", || {
            let rank = self.rank();
            if rank == root {
                let mut out: Vec<Vec<f64>> = vec![Vec::new(); self.size()];
                out[root] = local;
                for (src, slot) in out.iter_mut().enumerate() {
                    if src != root {
                        *slot = self.recv_or_abort(src, TAG_STAR + 3)?;
                    }
                }
                Ok(Some(out))
            } else {
                self.send(root, TAG_STAR + 3, local);
                Ok(None)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn all_to_all_v_routes_every_buffer() {
        let p = 5;
        let (results, report) = Universe::new(p).run(|comm| {
            let rank = comm.rank();
            // Rank r sends [r*10 + d] to rank d, with varying lengths.
            let bufs: Vec<Vec<f64>> =
                (0..p).map(|d| vec![(rank * 10 + d) as f64; (d % 3) + 1]).collect();
            comm.all_to_all_v(bufs).unwrap()
        });
        for (rank, recv) in results.iter().enumerate() {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf.len(), (rank % 3) + 1);
                assert!(buf.iter().all(|&v| v == (src * 10 + rank) as f64));
            }
        }
        // Each rank sends Σ_{d≠r} len(d) words.
        for rank in 0..p {
            let expected: u64 = (0..p).filter(|&d| d != rank).map(|d| (d % 3) as u64 + 1).sum();
            assert_eq!(report.per_rank[rank].words_sent, expected);
        }
        assert_eq!(report.max_rounds(), (p - 1) as u64);
    }

    #[test]
    fn overlapped_all_to_all_matches_barrier_accounting() {
        let p = 5;
        let make_bufs = |rank: usize| -> Vec<Vec<f64>> {
            (0..p).map(|d| vec![(rank * 10 + d) as f64; (d % 3) + 1]).collect()
        };
        let (_, barrier_report) =
            Universe::new(p).run(|comm| comm.all_to_all_v(make_bufs(comm.rank())).unwrap());
        let (results, report) = Universe::new(p).run(|comm| {
            let rank = comm.rank();
            let mut got: Vec<Option<Vec<f64>>> = vec![None; p];
            let mut send_phase_done = false;
            let shell = comm
                .all_to_all_v_overlapped(make_bufs(rank), |event| match event {
                    super::AllToAllEvent::SendsPosted => send_phase_done = true,
                    super::AllToAllEvent::Arrival { src, buf } => {
                        assert!(send_phase_done, "SendsPosted precedes arrivals");
                        got[src] = Some(buf);
                    }
                })
                .unwrap();
            assert!(send_phase_done, "SendsPosted was delivered");
            assert_eq!(shell.len(), p, "buffer shell comes back for recycling");
            got
        });
        for (rank, got) in results.iter().enumerate() {
            for (src, slot) in got.iter().enumerate() {
                if src == rank {
                    assert!(slot.is_none(), "self buffer is not delivered");
                } else {
                    let buf = slot.as_ref().expect("every peer's buffer arrives");
                    assert_eq!(buf, &vec![(src * 10 + rank) as f64; (rank % 3) + 1]);
                }
            }
        }
        // Exactly the barrier collective's words, messages and rounds.
        for (a, b) in report.per_rank.iter().zip(&barrier_report.per_rank) {
            assert_eq!(a.words_sent, b.words_sent);
            assert_eq!(a.words_recv, b.words_recv);
            assert_eq!(a.msgs_sent, b.msgs_sent);
            assert_eq!(a.msgs_recv, b.msgs_recv);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn all_gather_collects_in_rank_order() {
        let p = 6;
        let (results, report) =
            Universe::new(p).run(|comm| comm.all_gather(vec![comm.rank() as f64; 2]).unwrap());
        for recv in &results {
            for (src, buf) in recv.iter().enumerate() {
                assert_eq!(buf, &vec![src as f64; 2]);
            }
        }
        // Ring: each rank sends (P-1)*len words.
        for rank in 0..p {
            assert_eq!(report.per_rank[rank].words_sent, 2 * (p as u64 - 1));
        }
    }

    #[test]
    fn reduce_scatter_sums_contributions() {
        let p = 4;
        let (results, _) = Universe::new(p).run(|comm| {
            let rank = comm.rank();
            // contribs[d] = [rank + d] repeated 3 times.
            let contribs: Vec<Vec<f64>> = (0..p).map(|d| vec![(rank + d) as f64; 3]).collect();
            comm.reduce_scatter(contribs).unwrap()
        });
        for (rank, out) in results.iter().enumerate() {
            // Σ_s (s + rank) = P*rank + P(P-1)/2.
            let expected = (p * rank + p * (p - 1) / 2) as f64;
            assert_eq!(out, &vec![expected; 3]);
        }
    }

    #[test]
    fn all_reduce_and_broadcast() {
        let p = 7;
        let (results, _) = Universe::new(p).run(|comm| {
            let sum = comm.all_reduce(vec![comm.rank() as f64]).unwrap();
            let bc = comm.broadcast(2, vec![sum[0] * 2.0]).unwrap();
            (sum[0], bc[0])
        });
        let total = (p * (p - 1) / 2) as f64;
        for &(s, b) in &results {
            assert_eq!(s, total);
            assert_eq!(b, total * 2.0);
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let p = 4;
        let (results, _) =
            Universe::new(p).run(|comm| comm.gather(1, vec![comm.rank() as f64]).unwrap());
        assert!(results[0].is_none());
        let at_root = results[1].as_ref().unwrap();
        for (src, buf) in at_root.iter().enumerate() {
            assert_eq!(buf, &vec![src as f64]);
        }
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let (results, report) = Universe::new(1).run(|comm| {
            let a2a = comm.all_to_all_v(vec![vec![1.0]]).unwrap();
            let ag = comm.all_gather(vec![2.0]).unwrap();
            let rs = comm.reduce_scatter(vec![vec![3.0]]).unwrap();
            let ar = comm.all_reduce(vec![4.0]).unwrap();
            (a2a[0][0], ag[0][0], rs[0], ar[0])
        });
        assert_eq!(results[0], (1.0, 2.0, 3.0, 4.0));
        assert_eq!(report.total_words_sent(), 0);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use crate::Universe;

    #[test]
    fn all_to_all_with_empty_buffers() {
        let p = 4;
        let (results, report) = Universe::new(p).run(|comm| {
            let bufs: Vec<Vec<f64>> = vec![Vec::new(); p];
            comm.all_to_all_v(bufs).unwrap()
        });
        for recv in &results {
            assert!(recv.iter().all(Vec::is_empty));
        }
        assert_eq!(report.total_words_sent(), 0);
        // Messages still flow (empty payloads), rounds counted.
        assert_eq!(report.max_rounds(), (p - 1) as u64);
    }

    #[test]
    fn all_gather_of_empty_vectors() {
        let (results, report) = Universe::new(3).run(|comm| comm.all_gather(Vec::new()).unwrap());
        for recv in &results {
            assert_eq!(recv.len(), 3);
            assert!(recv.iter().all(Vec::is_empty));
        }
        assert_eq!(report.total_words_sent(), 0);
    }

    #[test]
    fn two_rank_collectives() {
        let (results, _) = Universe::new(2).run(|comm| {
            let r = comm.rank() as f64;
            let ag = comm.all_gather(vec![r]).unwrap();
            let rs = comm.reduce_scatter(vec![vec![r], vec![r + 10.0]]).unwrap();
            let ar = comm.all_reduce(vec![r]).unwrap();
            (ag[0][0], ag[1][0], rs[0], ar[0])
        });
        // reduce_scatter: rank d receives Σ_s contribs_s[d].
        // Toward rank 0: [0.0] from rank 0 plus [1.0] from rank 1 = 1.0.
        // Toward rank 1: [10.0] from rank 0 plus [11.0] from rank 1 = 21.0.
        assert_eq!(results[0], (0.0, 1.0, 1.0, 1.0));
        assert_eq!(results[1], (0.0, 1.0, 21.0, 1.0));
    }
}
