//! Logarithmic-depth collectives: recursive-doubling all-reduce and
//! binomial-tree broadcast (Thakur et al.'s standard algorithms). These
//! complement the simple star algorithms in [`crate::collectives`]: the
//! star costs `O(P·w)` at the root, the tree versions `O(w·log P)` per
//! rank — the distinction matters once payloads grow.

use crate::comm::{Comm, CommError};

const TAG_RD_ALLREDUCE: u64 = 5 << 48;
const TAG_BINOMIAL: u64 = 6 << 48;

impl Comm {
    /// All-reduce (element-wise sum) via recursive doubling: `⌈log₂ P⌉`
    /// rounds of pairwise exchanges, each moving the full payload. For
    /// non-power-of-two `P`, the excess ranks fold into the power-of-two
    /// core first (one extra exchange).
    pub fn all_reduce_rd(&self, local: Vec<f64>) -> Result<Vec<f64>, CommError> {
        self.with_fallback_phase("coll:all-reduce-rd", || {
            let p = self.size();
            if p == 1 {
                return Ok(local);
            }
            let rank = self.rank();
            let pof2 = p.next_power_of_two() >> if p.is_power_of_two() { 0 } else { 1 };
            let rem = p - pof2;
            let mut acc = local;

            // Fold phase: ranks ≥ pof2 send to (rank − pof2) and go idle.
            if rank >= pof2 {
                self.send(rank - pof2, TAG_RD_ALLREDUCE, acc.clone());
            } else if rank < rem {
                let piece = self.recv(rank + pof2, TAG_RD_ALLREDUCE)?;
                add_assign(&mut acc, &piece)?;
            }

            if rank < pof2 {
                let mut mask = 1usize;
                while mask < pof2 {
                    let partner = rank ^ mask;
                    self.send(partner, TAG_RD_ALLREDUCE + mask as u64, acc.clone());
                    let piece = self.recv(partner, TAG_RD_ALLREDUCE + mask as u64)?;
                    add_assign(&mut acc, &piece)?;
                    self.count_round();
                    mask <<= 1;
                }
            }

            // Unfold phase: core ranks push the result back out.
            if rank < rem {
                self.send(rank + pof2, (TAG_RD_ALLREDUCE + (pof2 as u64)) << 1, acc.clone());
            } else if rank >= pof2 {
                acc = self.recv(rank - pof2, (TAG_RD_ALLREDUCE + (pof2 as u64)) << 1)?;
            }
            Ok(acc)
        })
    }

    /// Broadcast from `root` via a binomial tree: `⌈log₂ P⌉` rounds, each
    /// rank sends at most `log₂ P` times and receives once.
    pub fn broadcast_binomial(&self, root: usize, data: Vec<f64>) -> Result<Vec<f64>, CommError> {
        self.with_fallback_phase("coll:broadcast-binomial", || {
            let p = self.size();
            if p == 1 {
                return Ok(data);
            }
            let rank = self.rank();
            // Work in a rotated space where the root is 0.
            let vrank = (rank + p - root) % p;
            let mut payload = if vrank == 0 { Some(data) } else { None };
            let mut mask = p.next_power_of_two();
            // Receive step: the lowest set bit of vrank determines the parent.
            if vrank != 0 {
                let lsb = vrank & vrank.wrapping_neg();
                let parent = ((vrank - lsb) + root) % p;
                payload = Some(self.recv(parent, TAG_BINOMIAL + lsb as u64)?);
                mask = lsb;
            }
            // Send steps: children are vrank + m for m < (my receive mask).
            let mut m = mask >> 1;
            let data = payload.expect("payload set by now");
            while m > 0 {
                if vrank + m < p {
                    let child = (vrank + m + root) % p;
                    self.send(child, TAG_BINOMIAL + m as u64, data.clone());
                }
                m >>= 1;
            }
            Ok(data)
        })
    }
}

fn add_assign(acc: &mut [f64], piece: &[f64]) -> Result<(), CommError> {
    assert_eq!(acc.len(), piece.len(), "all_reduce_rd length mismatch");
    for (a, b) in acc.iter_mut().zip(piece) {
        *a += b;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn recursive_doubling_matches_star_for_all_sizes() {
        for p in 1..=12usize {
            let (results, _) = Universe::new(p).run(|comm| {
                let rd = comm.all_reduce_rd(vec![comm.rank() as f64, 1.0]).unwrap();
                let star = comm.all_reduce(vec![comm.rank() as f64, 1.0]).unwrap();
                (rd, star)
            });
            let total = (p * (p - 1) / 2) as f64;
            for (rd, star) in results {
                assert_eq!(rd[0], total, "P = {p}");
                assert_eq!(rd[1], p as f64);
                assert_eq!(star[0], total);
            }
        }
    }

    #[test]
    fn recursive_doubling_is_cheaper_at_the_root_for_big_payloads() {
        let p = 8;
        let w = 128;
        let (_, star_report) = Universe::new(p).run(|comm| {
            comm.all_reduce(vec![1.0; w]).unwrap();
        });
        let (_, rd_report) = Universe::new(p).run(|comm| {
            comm.all_reduce_rd(vec![1.0; w]).unwrap();
        });
        // Star: root sends (P−1)·w. Recursive doubling: log₂(P)·w each.
        assert_eq!(star_report.max_words_sent(), ((p - 1) * w) as u64);
        assert_eq!(rd_report.max_words_sent(), (3 * w) as u64);
        assert!(rd_report.max_words_sent() < star_report.max_words_sent());
    }

    #[test]
    fn binomial_broadcast_delivers_from_any_root() {
        for p in 1..=10usize {
            for root in 0..p {
                let (results, report) = Universe::new(p).run(|comm| {
                    let data = if comm.rank() == root { vec![42.0, root as f64] } else { vec![] };
                    comm.broadcast_binomial(root, data).unwrap()
                });
                for out in &results {
                    assert_eq!(out, &vec![42.0, root as f64], "P = {p} root = {root}");
                }
                // Max sends per rank ≈ log₂ P messages of w words.
                let log2p = (p as f64).log2().ceil() as u64;
                assert!(report.max_msgs_sent() <= log2p.max(1), "P = {p}");
            }
        }
    }

    #[test]
    fn binomial_beats_star_broadcast_root_cost() {
        let p = 16;
        let w = 64;
        let (_, star) = Universe::new(p).run(|comm| {
            comm.broadcast(0, if comm.rank() == 0 { vec![1.0; w] } else { vec![] }).unwrap();
        });
        let (_, tree) = Universe::new(p).run(|comm| {
            comm.broadcast_binomial(0, if comm.rank() == 0 { vec![1.0; w] } else { vec![] })
                .unwrap();
        });
        assert_eq!(star.per_rank[0].words_sent, ((p - 1) * w) as u64);
        assert_eq!(tree.per_rank[0].words_sent, 4 * w as u64); // log₂ 16
        assert!(tree.per_rank[0].words_sent < star.per_rank[0].words_sent);
    }
}
