#![warn(missing_docs)]
//! An in-process message-passing runtime implementing the α-β-γ (MPI) model
//! of parallel computation with **exact communication-cost accounting**.
//!
//! The paper analyzes distributed-memory algorithms in the MPI model: `P`
//! processors with private memories, connected by a fully connected network,
//! each able to send and receive one message at a time. Its results are
//! statements about the **bandwidth cost** — the number of words each
//! processor sends and receives — which is machine-independent. This crate
//! therefore substitutes a real cluster with an in-process simulator:
//!
//! * each rank is an OS thread; links are unbounded channels,
//! * every [`Comm::send`] / [`Comm::recv`] updates per-rank counters of
//!   words and messages moved,
//! * collectives ([`Comm::all_to_all_v`], [`Comm::all_gather`], …) are built
//!   from point-to-point operations using the standard algorithms cited by
//!   the paper (Thakur et al.), so their measured cost is what a real MPI
//!   run would charge,
//! * [`Universe::run`] returns both the per-rank results and a
//!   [`CostReport`] with the exact counts.
//!
//! Blocking receives carry a configurable timeout so that deadlocks
//! (mismatched schedules, missing sends) surface as errors instead of hangs.

pub mod collectives;
pub mod collectives_tree;
pub mod comm;
pub mod cost;
pub mod matching;

pub use comm::{Comm, CommError, Msg};
pub use cost::{CommEvent, CommEventKind, CostReport, RankCost};
pub use matching::{match_messages, MatchReport, MessageMatch};

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Configuration and entry point for a simulated parallel machine.
#[derive(Clone, Debug)]
pub struct Universe {
    size: usize,
    recv_timeout: Duration,
    tracing: bool,
}

impl Universe {
    /// A machine with `size` ranks and the default 60 s receive timeout.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "need at least one rank");
        Universe { size, recv_timeout: Duration::from_secs(60), tracing: false }
    }

    /// Enables per-rank event tracing: every send/recv is recorded and can
    /// be drained inside the rank closure with [`Comm::take_trace`].
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Overrides the receive timeout (use a short one in failure-injection
    /// tests so deadlocks surface quickly).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Number of ranks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` on every rank concurrently and returns the per-rank results
    /// (indexed by rank) together with the communication-cost report.
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run<F, R>(&self, f: F) -> (Vec<R>, CostReport)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (results, report, _traces) = self.run_inner(self.tracing, &f);
        (results, report)
    }

    /// Runs `f` on every rank with tracing forced **on** and returns, in
    /// addition to the results and cost report, each rank's complete event
    /// log (indexed by rank).
    ///
    /// Unlike draining mid-run with [`Comm::take_trace`] — which destroys
    /// everything recorded so far on that rank — this collects the full,
    /// untouched log after every rank closure has returned. Any events the
    /// closure already drained itself with `take_trace` are of course not
    /// re-collected; don't mix the two styles unless that is what you want.
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run_traced<F, R>(&self, f: F) -> (Vec<R>, CostReport, Vec<Vec<CommEvent>>)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        self.run_inner(true, &f)
    }

    fn run_inner<F, R>(&self, tracing: bool, f: &F) -> (Vec<R>, CostReport, Vec<Vec<CommEvent>>)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let p = self.size;
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let counters = cost::SharedCounters::new(p);
        let barrier = Arc::new(Barrier::new(p));
        // Shared panic flag: a rank that panics raises it so that peers
        // blocked in `recv` fail fast with `CommError::Disconnected` instead
        // of waiting out the full receive timeout (the surviving sender
        // clones keep every channel alive, so the mpsc disconnect state
        // alone never fires).
        let abort = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // One epoch shared by all ranks so per-rank timestamps are mutually
        // comparable in the merged trace.
        let epoch = Instant::now();

        let outcomes: Vec<(R, Vec<CommEvent>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx_slot) in receivers.iter_mut().enumerate() {
                let rx = rx_slot.take().unwrap();
                let senders = senders.clone();
                let counters = counters.clone();
                let barrier = barrier.clone();
                let abort = abort.clone();
                let timeout = self.recv_timeout;
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(
                        rank,
                        senders,
                        rx,
                        counters,
                        barrier,
                        timeout,
                        abort.clone(),
                        epoch,
                        tracing,
                    );
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm))) {
                        Ok(result) => {
                            let trace = comm.take_trace();
                            (result, trace)
                        }
                        Err(payload) => {
                            abort.store(true, std::sync::atomic::Ordering::Release);
                            std::panic::resume_unwind(payload);
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });

        let mut results = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        for (r, t) in outcomes {
            results.push(r);
            traces.push(t);
        }
        (results, counters.report(), traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let (results, report) = Universe::new(1).run(|comm| comm.rank() * 10 + comm.size());
        assert_eq!(results, vec![1]);
        assert_eq!(report.total_words_sent(), 0);
    }

    #[test]
    fn ring_pass_counts_words() {
        let p = 4;
        let (results, report) = Universe::new(p).run(|comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, 7, vec![comm.rank() as f64; 3]);
            let got = comm.recv(prev, 7).unwrap();
            got[0] as usize
        });
        for (rank, &got) in results.iter().enumerate() {
            assert_eq!(got, (rank + p - 1) % p);
        }
        for rank in 0..p {
            assert_eq!(report.per_rank[rank].words_sent, 3);
            assert_eq!(report.per_rank[rank].words_recv, 3);
            assert_eq!(report.per_rank[rank].msgs_sent, 1);
            assert_eq!(report.per_rank[rank].msgs_recv, 1);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0]);
                comm.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order; the mailbox must buffer.
                let b = comm.recv(0, 2).unwrap();
                let a = comm.recv(0, 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn missing_send_times_out_instead_of_hanging() {
        let universe = Universe::new(2).with_recv_timeout(Duration::from_millis(50));
        let (results, _) =
            universe.run(|comm| if comm.rank() == 1 { comm.recv(0, 99).is_err() } else { true });
        assert!(results[1], "recv with no matching send must time out");
    }

    #[test]
    fn panicking_rank_fails_peers_fast() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Rank 1 panics immediately; ranks 0 and 2 block in `recv` on it.
        // Without the abort flag the peers would sit out the full 60 s
        // default timeout (their sender clones keep the channels alive);
        // with it they observe `Disconnected` within the poll granularity.
        let start = Instant::now();
        let disconnected = Arc::new(AtomicUsize::new(0));
        let disconnected_in = disconnected.clone();
        let universe = Universe::new(3); // default 60 s timeout on purpose
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            universe.run(|comm| {
                if comm.rank() == 1 {
                    panic!("deliberate rank failure");
                }
                match comm.recv(1, 7) {
                    Err(CommError::Disconnected { rank, from, tag }) => {
                        assert_eq!(rank, comm.rank());
                        assert_eq!(from, 1);
                        assert_eq!(tag, 7);
                        disconnected_in.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("expected Disconnected, got {other:?}"),
                }
            })
        }));
        assert!(outcome.is_err(), "the rank panic must still propagate");
        assert_eq!(disconnected.load(Ordering::SeqCst), 2, "both peers must fail fast");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "peers must not wait out the 60 s receive timeout (took {:?})",
            start.elapsed()
        );
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 8;
        Universe::new(p).run(|comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }
}
