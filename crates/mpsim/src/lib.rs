#![warn(missing_docs)]
//! An in-process message-passing runtime implementing the α-β-γ (MPI) model
//! of parallel computation with **exact communication-cost accounting**.
//!
//! The paper analyzes distributed-memory algorithms in the MPI model: `P`
//! processors with private memories, connected by a fully connected network,
//! each able to send and receive one message at a time. Its results are
//! statements about the **bandwidth cost** — the number of words each
//! processor sends and receives — which is machine-independent. This crate
//! therefore substitutes a real cluster with an in-process simulator:
//!
//! * each rank is an OS thread; links are unbounded channels,
//! * every [`Comm::send`] / [`Comm::recv`] updates per-rank counters of
//!   words and messages moved,
//! * collectives ([`Comm::all_to_all_v`], [`Comm::all_gather`], …) are built
//!   from point-to-point operations using the standard algorithms cited by
//!   the paper (Thakur et al.), so their measured cost is what a real MPI
//!   run would charge,
//! * [`Universe::run`] returns both the per-rank results and a
//!   [`CostReport`] with the exact counts.
//!
//! Blocking receives carry a configurable timeout so that deadlocks
//! (mismatched schedules, missing sends) surface as errors instead of hangs.

pub mod collectives;
pub mod collectives_tree;
pub mod comm;
pub mod cost;
pub mod fault;
pub mod flight;
pub mod matching;
pub(crate) mod sync;

pub use collectives::AllToAllEvent;
pub use comm::{AbortInfo, Comm, CommError, Msg};
pub use cost::{CommEvent, CommEventKind, CostReport, RankCost};
pub use fault::{CrashSpec, FaultPlan, InjectedFault, XorShift64};
pub use flight::{
    FlightEvent, FlightKind, FlightOverhead, FlightRecorder, FlightSnapshot,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use matching::{match_messages, MatchReport, MessageMatch};

use comm::AbortState;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use symtensor_telemetry::TelemetryPlane;

/// Configuration and entry point for a simulated parallel machine.
#[derive(Clone, Debug)]
pub struct Universe {
    size: usize,
    recv_timeout: Duration,
    poll_interval: Duration,
    tracing: bool,
    flight_capacity: usize,
    faults: Option<FaultPlan>,
    telemetry: Option<Arc<TelemetryPlane>>,
}

impl Universe {
    /// A machine with `size` ranks, the default 60 s receive timeout and
    /// the always-on flight recorder at [`DEFAULT_FLIGHT_CAPACITY`].
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "need at least one rank");
        Universe {
            size,
            recv_timeout: Duration::from_secs(60),
            poll_interval: comm::DEFAULT_POLL_INTERVAL,
            tracing: false,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            faults: None,
            telemetry: None,
        }
    }

    /// Enables per-rank event tracing: every send/recv is recorded and
    /// collected at the end of the run by the traced entry points.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.tracing = tracing;
        self
    }

    /// Overrides the receive timeout (use a short one in failure-injection
    /// tests so deadlocks surface quickly).
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Overrides the abort-poll interval: how often a blocked receive
    /// re-checks the universe's fail-fast flag (default 25 ms). Chaos and
    /// fail-fast suites drop this to ~2 ms so an injected crash surfaces
    /// in milliseconds of wall-clock instead of tens of them.
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be non-zero");
        self.poll_interval = interval;
        self
    }

    /// Overrides the per-rank flight-recorder ring capacity (records, not
    /// bytes; 20 bytes each). `0` disables the recorder entirely — the
    /// recorder-off arm of overhead A/B measurements.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight_capacity = capacity;
        self
    }

    /// Installs a deterministic [`FaultPlan`] (symtensor-chaos): every rank
    /// consults it on send/recv to drop, delay or duplicate messages and to
    /// fire scheduled crashes. A plan that can inject nothing (all
    /// probabilities zero, no exact drops, no crash due this attempt) is
    /// observationally inert — counters, traces and flight windows are
    /// bit-identical to a universe without the plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Attaches a live telemetry plane: every rank publishes its send/recv
    /// word counts (per phase), gauges and rolling-window histograms into
    /// the plane's lock-free cells as it runs, so a concurrent
    /// [`symtensor_telemetry::Scraper`] can observe the run in flight. The
    /// plane must have at least as many rank cells as this universe has
    /// ranks. Without a plane, the cost is one branch per send/recv; the
    /// computed results and [`CostReport`] are bit-identical either way.
    ///
    /// # Panics
    /// Panics if the plane has fewer rank cells than this universe.
    pub fn with_telemetry(mut self, plane: Arc<TelemetryPlane>) -> Self {
        assert!(
            plane.ranks() >= self.size,
            "telemetry plane has {} rank cells, universe has {} ranks",
            plane.ranks(),
            self.size
        );
        self.telemetry = Some(plane);
        self
    }

    /// Number of ranks `P`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` on every rank concurrently and returns the per-rank results
    /// (indexed by rank) together with the communication-cost report.
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run<F, R>(&self, f: F) -> (Vec<R>, CostReport)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (outcomes, report) = self.run_inner(self.tracing, &f);
        let (results, _, _) = unwrap_outcomes(outcomes);
        (results, report)
    }

    /// Runs `f` on every rank with tracing forced **on** and returns, in
    /// addition to the results and cost report, each rank's complete event
    /// log (indexed by rank).
    ///
    /// The log is collected after every rank closure has returned, so it is
    /// complete and in recording order — rank code never observes or
    /// disturbs it mid-run.
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run_traced<F, R>(&self, f: F) -> (Vec<R>, CostReport, Vec<Vec<CommEvent>>)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (outcomes, report) = self.run_inner(true, &f);
        let (results, traces, _) = unwrap_outcomes(outcomes);
        (results, report, traces)
    }

    /// Like [`Universe::run`] but additionally returns every rank's
    /// decoded flight-recorder window (indexed by rank).
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run_flight<F, R>(&self, f: F) -> (Vec<R>, CostReport, Vec<FlightSnapshot>)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (outcomes, report) = self.run_inner(self.tracing, &f);
        let (results, _, flight) = unwrap_outcomes(outcomes);
        (results, report, flight)
    }

    /// [`Universe::run_traced`] plus the per-rank flight snapshots.
    ///
    /// # Panics
    /// Propagates a panic from any rank.
    pub fn run_traced_flight<F, R>(
        &self,
        f: F,
    ) -> (Vec<R>, CostReport, Vec<Vec<CommEvent>>, Vec<FlightSnapshot>)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (outcomes, report) = self.run_inner(true, &f);
        let (results, traces, flight) = unwrap_outcomes(outcomes);
        (results, report, traces, flight)
    }

    /// Runs `f` on every rank with tracing forced on, and converts a rank
    /// panic into a structured [`RankFailure`] instead of propagating it:
    /// the post-mortem path. The failure carries the aborting rank's
    /// identity, its last phase/round annotation, the panic message, the
    /// cost report accumulated up to the abort, and **every** rank's event
    /// log and flight-recorder window — the raw material for a crash dump.
    #[allow(clippy::type_complexity)]
    pub fn try_run_traced<F, R>(
        &self,
        f: F,
    ) -> Result<(Vec<R>, CostReport, Vec<Vec<CommEvent>>, Vec<FlightSnapshot>), Box<RankFailure>>
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let (outcomes, report) = self.run_inner(true, &f);
        let failed = outcomes.iter().position(|o| o.result.is_err());
        let Some(first_failed) = failed else {
            let (results, traces, flight) = unwrap_outcomes(outcomes);
            return Ok((results, report, traces, flight));
        };
        // Root-cause attribution: the abort state records the first rank
        // whose panic tripped the flag; fall back to the lowest failed
        // rank if it is somehow unset.
        let attribution = outcomes[first_failed].abort_info.or_else(|| {
            outcomes
                .iter()
                .find_map(|o| o.abort_info)
                .filter(|info| outcomes[info.rank].result.is_err())
        });
        let (rank, phase, round) = match attribution {
            Some(info) if outcomes[info.rank].result.is_err() => {
                (info.rank, info.phase, info.round)
            }
            _ => (first_failed, None, None),
        };
        let message = match &outcomes[rank].result {
            Err(payload) => panic_message(payload.as_ref()),
            Ok(_) => unreachable!("attributed rank must have failed"),
        };
        let mut traces = Vec::with_capacity(outcomes.len());
        let mut flight = Vec::with_capacity(outcomes.len());
        for o in outcomes {
            traces.push(o.trace);
            flight.push(o.flight);
        }
        Err(Box::new(RankFailure { rank, phase, round, message, report, traces, flight }))
    }

    fn run_inner<F, R>(&self, tracing: bool, f: &F) -> (Vec<RankOutcome<R>>, CostReport)
    where
        F: Fn(&Comm) -> R + Sync,
        R: Send,
    {
        let p = self.size;
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(p);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let counters = cost::SharedCounters::new(p);
        let barrier = Arc::new(Barrier::new(p));
        // Shared panic state: a rank that panics trips it (with its
        // identity and last phase/round annotation, first writer wins) so
        // that peers blocked in `recv` fail fast with an attributed
        // `CommError::Disconnected` instead of waiting out the full receive
        // timeout (the surviving sender clones keep every channel alive, so
        // the mpsc disconnect state alone never fires).
        let abort = Arc::new(AbortState::new());
        // One epoch shared by all ranks so per-rank timestamps are mutually
        // comparable in the merged trace.
        let epoch = Instant::now();
        let flight_capacity = self.flight_capacity;

        let outcomes: Vec<RankOutcome<R>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx_slot) in receivers.iter_mut().enumerate() {
                let rx = rx_slot.take().unwrap();
                let senders = senders.clone();
                let counters = counters.clone();
                let barrier = barrier.clone();
                let abort = abort.clone();
                let timeout = self.recv_timeout;
                let poll_interval = self.poll_interval;
                let faults = self.faults.clone();
                let telemetry = self.telemetry.clone();
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(
                        rank,
                        senders,
                        rx,
                        counters,
                        barrier,
                        timeout,
                        poll_interval,
                        abort.clone(),
                        epoch,
                        tracing,
                        flight_capacity,
                        faults,
                        telemetry,
                    );
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm)));
                    if result.is_err() {
                        // `with_phase` restores the previous label only on
                        // normal return, so the cells still hold the
                        // innermost phase/round at the panic site.
                        abort.trip(AbortInfo {
                            rank,
                            phase: comm.current_phase(),
                            round: comm.current_round(),
                        });
                    }
                    // Final live-metrics flush: the recorder's self-tax is
                    // only known once the closure is done.
                    comm.publish_flight_overhead();
                    // Drain telemetry even from a failed rank — the crash
                    // dump needs its final window most of all.
                    RankOutcome {
                        result,
                        trace: comm.drain_trace(),
                        flight: comm.flight_snapshot(),
                        abort_info: abort.info(),
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread cannot panic outside catch_unwind"))
                .collect()
        });

        (outcomes, counters.report())
    }
}

/// Everything one rank thread hands back to the universe: its closure
/// outcome (panic payload preserved), telemetry, and the abort attribution
/// it observed at exit.
struct RankOutcome<R> {
    result: Result<R, Box<dyn std::any::Any + Send + 'static>>,
    trace: Vec<CommEvent>,
    flight: FlightSnapshot,
    abort_info: Option<AbortInfo>,
}

/// Unwraps per-rank outcomes, resuming the root-cause panic if any rank
/// failed (the rank named by the abort attribution when available, so the
/// panic the caller observes is the one that started the cascade).
fn unwrap_outcomes<R>(
    outcomes: Vec<RankOutcome<R>>,
) -> (Vec<R>, Vec<Vec<CommEvent>>, Vec<FlightSnapshot>) {
    if outcomes.iter().any(|o| o.result.is_err()) {
        let root = outcomes
            .iter()
            .find_map(|o| o.abort_info)
            .map(|info| info.rank)
            .filter(|&r| outcomes[r].result.is_err())
            .unwrap_or_else(|| outcomes.iter().position(|o| o.result.is_err()).unwrap());
        let payload = match outcomes.into_iter().nth(root).unwrap().result {
            Err(payload) => payload,
            Ok(_) => unreachable!("root rank was checked to have failed"),
        };
        std::panic::resume_unwind(payload);
    }
    let mut results = Vec::with_capacity(outcomes.len());
    let mut traces = Vec::with_capacity(outcomes.len());
    let mut flight = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        results.push(o.result.unwrap_or_else(|_| unreachable!()));
        traces.push(o.trace);
        flight.push(o.flight);
    }
    (results, traces, flight)
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A structured rank failure produced by [`Universe::try_run_traced`]: the
/// aborting rank, where it was (last phase/round annotation), what it said,
/// and the full telemetry of **all** ranks up to the abort — everything a
/// post-mortem dump needs.
#[derive(Debug)]
pub struct RankFailure {
    /// The rank whose panic tripped the abort flag.
    pub rank: usize,
    /// Its innermost phase at the panic site.
    pub phase: Option<&'static str>,
    /// Its last schedule-round annotation.
    pub round: Option<u64>,
    /// The panic message.
    pub message: String,
    /// Cost counters accumulated up to the abort.
    pub report: CostReport,
    /// Per-rank event logs (tracing is forced on).
    pub traces: Vec<Vec<CommEvent>>,
    /// Per-rank flight-recorder windows, failed rank included.
    pub flight: Vec<FlightSnapshot>,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked", self.rank)?;
        if let Some(phase) = self.phase {
            write!(f, " in phase {phase}")?;
        }
        if let Some(round) = self.round {
            write!(f, ", round {round}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for RankFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let (results, report) = Universe::new(1).run(|comm| comm.rank() * 10 + comm.size());
        assert_eq!(results, vec![1]);
        assert_eq!(report.total_words_sent(), 0);
    }

    #[test]
    fn ring_pass_counts_words() {
        let p = 4;
        let (results, report) = Universe::new(p).run(|comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.send(next, 7, vec![comm.rank() as f64; 3]);
            let got = comm.recv(prev, 7).unwrap();
            got[0] as usize
        });
        for (rank, &got) in results.iter().enumerate() {
            assert_eq!(got, (rank + p - 1) % p);
        }
        for rank in 0..p {
            assert_eq!(report.per_rank[rank].words_sent, 3);
            assert_eq!(report.per_rank[rank].words_recv, 3);
            assert_eq!(report.per_rank[rank].msgs_sent, 1);
            assert_eq!(report.per_rank[rank].msgs_recv, 1);
        }
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, vec![1.0]);
                comm.send(1, 2, vec![2.0]);
                0.0
            } else {
                // Receive in reverse tag order; the mailbox must buffer.
                let b = comm.recv(0, 2).unwrap();
                let a = comm.recv(0, 1).unwrap();
                a[0] * 10.0 + b[0]
            }
        });
        assert_eq!(results[1], 12.0);
    }

    #[test]
    fn missing_send_times_out_instead_of_hanging() {
        let universe = Universe::new(2)
            .with_recv_timeout(Duration::from_millis(50))
            .with_poll_interval(Duration::from_millis(2));
        let (results, _) =
            universe.run(|comm| if comm.rank() == 1 { comm.recv(0, 99).is_err() } else { true });
        assert!(results[1], "recv with no matching send must time out");
    }

    #[test]
    fn panicking_rank_fails_peers_fast() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Rank 1 panics immediately; ranks 0 and 2 block in `recv` on it.
        // Without the abort flag the peers would sit out the full 60 s
        // default timeout (their sender clones keep the channels alive);
        // with it they observe `Disconnected` within the poll granularity.
        let start = Instant::now();
        let disconnected = Arc::new(AtomicUsize::new(0));
        let disconnected_in = disconnected.clone();
        let universe = Universe::new(3); // default 60 s timeout on purpose
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            universe.run(|comm| {
                if comm.rank() == 1 {
                    panic!("deliberate rank failure");
                }
                match comm.recv(1, 7) {
                    Err(CommError::Disconnected { rank, from, tag, abort }) => {
                        assert_eq!(rank, comm.rank());
                        assert_eq!(from, 1);
                        assert_eq!(tag, 7);
                        assert_eq!(abort.map(|a| a.rank), Some(1), "abort must name rank 1");
                        disconnected_in.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("expected Disconnected, got {other:?}"),
                }
            })
        }));
        assert!(outcome.is_err(), "the rank panic must still propagate");
        assert_eq!(disconnected.load(Ordering::SeqCst), 2, "both peers must fail fast");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "peers must not wait out the 60 s receive timeout (took {:?})",
            start.elapsed()
        );
    }

    #[test]
    fn disconnect_error_names_the_aborting_rank_phase_and_round() {
        // Rank 1 panics inside `with_phase("gather-x")` with round 3
        // annotated; rank 0's Disconnected error must say so in Display.
        let universe = Universe::new(2);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            universe.run(|comm| {
                if comm.rank() == 1 {
                    comm.with_phase("gather-x", || {
                        comm.annotate_round(3);
                        panic!("injected failure");
                    })
                } else {
                    let err = comm.recv(1, 0).unwrap_err();
                    let text = format!("{err}");
                    assert!(text.contains("rank 1 aborted"), "got: {text}");
                    assert!(text.contains("phase gather-x"), "got: {text}");
                    assert!(text.contains("round 3"), "got: {text}");
                }
            })
        }));
        assert!(outcome.is_err(), "the panic must still propagate from run()");
    }

    #[test]
    fn try_run_traced_converts_a_panic_into_an_attributed_failure() {
        let universe = Universe::new(3);
        let failure = universe
            .try_run_traced(|comm| {
                if comm.rank() == 2 {
                    comm.with_phase("reduce-y", || {
                        comm.send(0, 1, vec![1.0; 4]);
                        panic!("mid-exchange failure");
                    });
                }
                let _ = comm.recv(2, 1);
                comm.rank()
            })
            .unwrap_err();
        assert_eq!(failure.rank, 2);
        assert_eq!(failure.phase, Some("reduce-y"));
        assert!(failure.message.contains("mid-exchange failure"));
        assert_eq!(failure.traces.len(), 3, "every rank's trace is drained");
        assert_eq!(failure.flight.len(), 3, "every rank's flight ring is drained");
        // The failing rank's send made it into counters, trace and flight.
        assert_eq!(failure.report.per_rank[2].words_sent, 4);
        assert_eq!(failure.flight[2].words_sent(), 4);
        let text = format!("{failure}");
        assert!(text.contains("rank 2") && text.contains("reduce-y"), "got: {text}");
    }

    #[test]
    fn try_run_traced_returns_ok_on_a_clean_run() {
        let (results, report, traces, flight) = Universe::new(2)
            .try_run_traced(|comm| {
                let partner = 1 - comm.rank();
                comm.with_phase("swap", || comm.exchange(partner, 0, vec![0.5; 3]).unwrap());
                comm.rank()
            })
            .unwrap();
        assert_eq!(results, vec![0, 1]);
        assert_eq!(report.total_words_sent(), 6);
        assert_eq!(traces.len(), 2);
        assert_eq!(flight.len(), 2);
        for snap in &flight {
            assert_eq!(snap.words_sent(), 3);
            assert_eq!(snap.words_recv(), 3);
        }
    }

    #[test]
    fn flight_recorder_is_always_on_and_capacity_zero_disables_it() {
        let body = |comm: &Comm| {
            comm.with_phase("swap", || {
                let partner = 1 - comm.rank();
                comm.exchange(partner, 0, vec![1.0, 2.0]).unwrap();
            });
        };
        // Default universe: untraced run still records flight events.
        let (_, _, flight) = Universe::new(2).run_flight(body);
        for snap in &flight {
            // PhaseEnter, Send, Recv, PhaseExit.
            assert_eq!(snap.events.len(), 4);
            assert_eq!(snap.overhead.capacity, DEFAULT_FLIGHT_CAPACITY);
            assert!(snap.overhead.recorded == 4 && snap.overhead.dropped == 0);
            let send = snap.events.iter().find(|e| e.kind == FlightKind::Send).unwrap();
            assert_eq!(send.phase, Some("swap"));
            assert_eq!(send.peer, Some(1 - snap.rank));
            assert_eq!(send.words, 2);
            let times: Vec<u64> = snap.events.iter().map(|e| e.t_ns).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {times:?}");
        }
        // Capacity 0: recorder fully disabled.
        let (_, _, flight) = Universe::new(2).with_flight_capacity(0).run_flight(body);
        for snap in &flight {
            assert!(snap.events.is_empty());
            assert_eq!(snap.overhead.recorded, 0);
        }
    }

    #[test]
    fn request_annotation_tags_flight_events() {
        let (_, _, flight) = Universe::new(2).run_flight(|comm| {
            let partner = 1 - comm.rank();
            comm.annotate_request(7);
            comm.send(partner, 0, vec![1.0]);
            comm.clear_request();
            assert_eq!(comm.current_request(), None);
            comm.recv(partner, 0).unwrap();
        });
        for snap in &flight {
            let send = snap.events.iter().find(|e| e.kind == FlightKind::Send).unwrap();
            assert_eq!(send.request, Some(7));
            let recv = snap.events.iter().find(|e| e.kind == FlightKind::Recv).unwrap();
            assert_eq!(recv.request, None, "recv happened after clear_request");
        }
    }

    #[test]
    fn run_traced_event_shapes_are_deterministic_across_runs() {
        // Two independent traced runs of the same workload must report the
        // same event shapes (kinds, phases, rounds — timestamps differ
        // across runs). This replaces the retired destructive-vs-collected
        // comparison for the removed mid-run `take_trace` drain: the traced
        // runners are now the only way to observe the log, so shape
        // determinism is the property that matters.
        let workload = |comm: &Comm| {
            comm.with_phase("swap", || {
                comm.annotate_round(2);
                let partner = 1 - comm.rank();
                comm.exchange(partner, 3, vec![1.0, 2.0]).unwrap();
                comm.clear_round();
            });
        };
        let shape = |events: &[CommEvent]| -> Vec<(String, Option<&'static str>, Option<u64>)> {
            events
                .iter()
                .map(|e| {
                    let kind = match e.kind {
                        CommEventKind::PhaseEnter { name, .. } => format!("+{name}"),
                        CommEventKind::PhaseExit { name, .. } => format!("-{name}"),
                        CommEventKind::Send { dst, tag, words } => {
                            format!("send:{dst}:{tag}:{words}")
                        }
                        CommEventKind::Recv { src, tag, words } => {
                            format!("recv:{src}:{tag}:{words}")
                        }
                        CommEventKind::Counter { key, value } => format!("#{key}={value}"),
                        CommEventKind::Fault { fault, .. } => format!("!{}", fault.label()),
                    };
                    (kind, e.phase, e.round)
                })
                .collect()
        };
        let (_, _, first) = Universe::new(2).run_traced(workload);
        let (_, _, second) = Universe::new(2).run_traced(workload);
        for rank in 0..2 {
            assert!(!first[rank].is_empty(), "rank {rank}: traced run must record events");
            assert_eq!(
                shape(&first[rank]),
                shape(&second[rank]),
                "rank {rank}: traced runs of the same workload must agree in shape"
            );
        }
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let p = 8;
        Universe::new(p).run(|comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), p);
        });
    }
}
