//! The per-rank communicator handle: point-to-point messaging with tags,
//! an out-of-order mailbox, cost counting, deadlock-surfacing timeouts and
//! (when enabled) timestamped event tracing with phase/round annotation.

use crate::cost::{CommEvent, CommEventKind, SharedCounters};
use crate::fault::{FaultPlan, FaultState, InjectedFault, SendAction};
use crate::flight::{FlightKind, FlightRecorder, FlightSnapshot};
use crate::sync::{AtomicBool, Ordering};
use std::cell::{Cell, RefCell};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use symtensor_telemetry::{keys as telemetry_keys, TelemetryPlane};

/// Default granularity at which a blocked [`Comm::recv`] re-checks the
/// universe's abort flag. A panicking peer therefore surfaces as
/// [`CommError::Disconnected`] within this bound (sub-100 ms) instead of
/// after the full receive timeout (60 s by default). Configurable per
/// universe via [`crate::Universe::with_poll_interval`] — chaos suites
/// drop it to ~2 ms so fail-fast paths cost milliseconds, not tens of
/// them.
pub(crate) const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A point-to-point message: source rank, user tag, payload of words.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// User tag.
    pub tag: u64,
    /// Payload words.
    pub data: Vec<f64>,
    /// Marks a chaos-injected duplicate delivery. Receivers discard marked
    /// copies on intake (the model of sequence-number deduplication), so a
    /// duplicate can never be claimed by a later tag-matched receive.
    pub dup: bool,
}

/// Identity and last phase/round annotations of the rank whose panic
/// tripped the universe's abort flag — attached to the
/// [`CommError::Disconnected`] errors surviving peers observe, so a
/// failure is attributable without a debugger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortInfo {
    /// The rank that panicked.
    pub rank: usize,
    /// The innermost phase it was in when it panicked ([`Comm::with_phase`]
    /// restores the previous label only on normal return, so the label at
    /// the panic site survives in the cell).
    pub phase: Option<&'static str>,
    /// Its last schedule-round annotation, if any.
    pub round: Option<u64>,
}

impl std::fmt::Display for AbortInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} aborted", self.rank)?;
        if let Some(phase) = self.phase {
            write!(f, " in phase {phase}")?;
        }
        if let Some(round) = self.round {
            write!(f, ", round {round}")?;
        }
        Ok(())
    }
}

/// Shared abort state for one universe run: the fail-fast flag peers poll
/// from blocked receives, plus first-write-wins attribution of which rank
/// tripped it and where it was.
pub(crate) struct AbortState {
    flag: AtomicBool,
    info: Mutex<Option<AbortInfo>>,
}

impl AbortState {
    pub(crate) fn new() -> Self {
        AbortState { flag: AtomicBool::new(false), info: Mutex::new(None) }
    }

    /// Records `info` (first writer wins — concurrent panics keep the
    /// earliest attribution) and raises the flag.
    pub(crate) fn trip(&self, info: AbortInfo) {
        let mut slot = self.info.lock().unwrap();
        if slot.is_none() {
            *slot = Some(info);
        }
        // Verified by the `abort-flag` model in symtensor-check.
        // ordering: Release — publishes the info write above; pairs
        // with the Acquire load in `tripped`.
        self.flag.store(true, Ordering::Release);
    }

    pub(crate) fn tripped(&self) -> bool {
        // ordering: Acquire — pairs with `trip`'s Release store so an
        // observed flag implies the attribution is visible.
        self.flag.load(Ordering::Acquire)
    }

    pub(crate) fn info(&self) -> Option<AbortInfo> {
        *self.info.lock().unwrap()
    }
}

/// Errors surfaced by communication operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived before the configured timeout — the MPI
    /// analogue of a deadlock or a schedule mismatch.
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// Expected source rank.
        from: usize,
        /// Expected tag.
        tag: u64,
    },
    /// The peer's channel is gone (its rank panicked).
    Disconnected {
        /// The waiting rank.
        rank: usize,
        /// Expected source rank.
        from: usize,
        /// Expected tag.
        tag: u64,
        /// Who tripped the abort flag and where, when known (the mpsc
        /// channel-disconnect path has no attribution).
        abort: Option<AbortInfo>,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { rank, from, tag } => write!(
                f,
                "rank {rank}: timed out waiting for message from rank {from} with tag {tag}"
            ),
            CommError::Disconnected { rank, from, tag, abort } => {
                write!(
                    f,
                    "rank {rank}: peer disconnected while waiting for rank {from} tag {tag}"
                )?;
                if let Some(info) = abort {
                    write!(f, " ({info})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CommError {}

/// The communicator owned by one rank for the duration of a
/// [`crate::Universe::run`] call.
pub struct Comm {
    rank: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    /// Messages received but not yet claimed by a matching `recv`.
    mailbox: RefCell<Vec<Msg>>,
    counters: SharedCounters,
    barrier: Arc<Barrier>,
    recv_timeout: Duration,
    /// Granularity at which blocked receives re-check the abort flag.
    poll_interval: Duration,
    /// Tripped by the universe when any rank panics; blocked receives poll
    /// it (at [`Comm::poll_interval`] granularity) so surviving ranks fail
    /// fast instead of waiting out the full timeout — surviving sender
    /// clones keep the mpsc channels alive, so the `Disconnected` state
    /// would otherwise never be observed. Carries the aborting rank's
    /// identity and last phase/round for error attribution.
    abort: Arc<AbortState>,
    /// Shared start instant of the universe — event timestamps are
    /// nanoseconds since this epoch.
    epoch: Instant,
    /// Innermost phase label currently active (see [`Comm::with_phase`]).
    phase: Cell<Option<&'static str>>,
    /// Schedule-round annotation currently active.
    round: Cell<Option<u64>>,
    /// Request-id annotation currently active (batched serving paths tag
    /// per-vector work so flight records are attributable to a request).
    request: Cell<Option<u64>>,
    /// Event log, populated only when the universe enables tracing.
    trace: Option<RefCell<Vec<CommEvent>>>,
    /// Always-on bounded flight recorder (capacity 0 disables).
    flight: RefCell<FlightRecorder>,
    /// Chaos state when the universe has a [`FaultPlan`] installed that can
    /// actually inject something this attempt; `None` otherwise, so an
    /// inert plan costs one branch per send and nothing per receive.
    faults: Option<RefCell<FaultState>>,
    /// Live-metrics handle when the universe has a telemetry plane
    /// attached; `None` costs one branch per send/recv.
    telemetry: Option<TelemetryHandle>,
}

/// This rank's view of the shared [`TelemetryPlane`]: the plane, a
/// one-entry phase-slot cache (so a publish costs a label compare, not a
/// registry scan) and the high-water mark of alerts already stamped into
/// the flight ring.
struct TelemetryHandle {
    plane: Arc<TelemetryPlane>,
    cached_label: Cell<Option<&'static str>>,
    cached_slot: Cell<usize>,
    seen_alerts: Cell<u64>,
}

impl Comm {
    // Crate-internal constructor invoked once per rank by the universe;
    // the argument list *is* the wiring diagram.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Msg>>,
        receiver: Receiver<Msg>,
        counters: SharedCounters,
        barrier: Arc<Barrier>,
        recv_timeout: Duration,
        poll_interval: Duration,
        abort: Arc<AbortState>,
        epoch: Instant,
        tracing: bool,
        flight_capacity: usize,
        faults: Option<FaultPlan>,
        telemetry: Option<Arc<TelemetryPlane>>,
    ) -> Self {
        Comm {
            rank,
            senders,
            receiver,
            mailbox: RefCell::new(Vec::new()),
            counters,
            barrier,
            recv_timeout,
            poll_interval,
            abort,
            epoch,
            phase: Cell::new(None),
            round: Cell::new(None),
            request: Cell::new(None),
            trace: tracing.then(|| RefCell::new(Vec::new())),
            flight: RefCell::new(FlightRecorder::new(flight_capacity)),
            faults: faults
                .filter(FaultPlan::is_active)
                .map(|plan| RefCell::new(FaultState::new(plan, rank))),
            telemetry: telemetry.map(|plane| TelemetryHandle {
                plane,
                // `None` → slot 0 is the plane's standing invariant
                // (UNPHASED is always slot 0), so the initial cache entry
                // is already correct.
                cached_label: Cell::new(None),
                cached_slot: Cell::new(0),
                seen_alerts: Cell::new(0),
            }),
        }
    }

    /// Whether event tracing is enabled for this run.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Crate-internal trace drain: the universe calls this exactly once
    /// per rank, after the rank's closure has returned, to collect the
    /// full event log for [`crate::Universe::run_traced`].
    pub(crate) fn drain_trace(&self) -> Vec<CommEvent> {
        self.trace.as_ref().map(|t| t.borrow_mut().split_off(0)).unwrap_or_default()
    }

    /// Nanoseconds since the universe epoch (monotonic).
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Nanoseconds since the universe epoch — the same clock every trace
    /// and flight record uses, exposed so serving layers can timestamp
    /// request spans on a comparable axis.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.now_ns()
    }

    /// Appends one record to the always-on flight ring, charging the
    /// measured recording cost (one extra clock read) to the recorder's
    /// self-overhead counter. One branch and no clock read when the
    /// recorder is disabled.
    ///
    /// The overhead is measured as `Instant::elapsed` of a single
    /// monotonic anchor — non-negative by construction, so the recorder's
    /// self-tax (and the telemetry gauge fed from it) can never go
    /// negative on coarse clocks, unlike a difference of two epoch reads.
    #[inline]
    fn record_flight(&self, kind: FlightKind, peer: Option<usize>, words: u64) {
        let mut flight = self.flight.borrow_mut();
        if !flight.enabled() {
            return;
        }
        let anchor = Instant::now();
        // Saturating: `anchor` was read after `epoch`, but be explicit
        // that a record timestamp can never underflow.
        let t0 = anchor.saturating_duration_since(self.epoch).as_nanos() as u64;
        flight.record(
            t0,
            kind,
            self.phase.get(),
            self.round.get(),
            peer,
            words,
            self.request.get(),
        );
        flight.add_overhead(anchor.elapsed().as_nanos() as u64);
    }

    /// Drains (non-destructively decodes) this rank's flight ring.
    pub fn flight_snapshot(&self) -> FlightSnapshot {
        self.flight.borrow().snapshot(self.rank)
    }

    #[inline]
    fn record(&self, kind: CommEventKind) {
        // Tracing disabled ⇒ a single branch, no clock read, no allocation.
        if let Some(trace) = &self.trace {
            trace.borrow_mut().push(CommEvent {
                t_ns: self.now_ns(),
                phase: self.phase.get(),
                round: self.round.get(),
                kind,
            });
        }
    }

    /// Runs `f` inside a named phase. When tracing is enabled, a
    /// `PhaseEnter`/`PhaseExit` pair with counter snapshots brackets the
    /// call and every event recorded inside carries the phase label; when
    /// tracing is disabled this is two `Cell` stores. Phases nest — the
    /// innermost label wins for event attribution.
    pub fn with_phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let prev = self.phase.replace(Some(name));
        if self.trace.is_some() {
            let snapshot = self.counters.rank(self.rank).snapshot();
            self.record(CommEventKind::PhaseEnter { name, snapshot });
        }
        self.record_flight(FlightKind::PhaseEnter, None, 0);
        let result = f();
        if self.trace.is_some() {
            let snapshot = self.counters.rank(self.rank).snapshot();
            self.record(CommEventKind::PhaseExit { name, snapshot });
        }
        self.record_flight(FlightKind::PhaseExit, None, 0);
        self.phase.set(prev);
        result
    }

    /// Like [`Comm::with_phase`] but only applies when no phase is already
    /// active. Collectives use this so that stand-alone calls are labelled
    /// (`coll:all-gather`, …) while calls nested inside an algorithm phase
    /// keep the algorithm's attribution.
    pub fn with_fallback_phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        if self.phase.get().is_some() {
            f()
        } else {
            self.with_phase(name, f)
        }
    }

    /// The phase label currently in effect, if any.
    #[inline]
    pub fn current_phase(&self) -> Option<&'static str> {
        self.phase.get()
    }

    /// Sets the schedule-round annotation attached to subsequently recorded
    /// events (step-counted schedules, Theorem 7.2). Clear with
    /// [`Comm::clear_round`].
    #[inline]
    pub fn annotate_round(&self, round: u64) {
        self.round.set(Some(round));
    }

    /// Clears the schedule-round annotation.
    #[inline]
    pub fn clear_round(&self) {
        self.round.set(None);
    }

    /// The schedule-round annotation currently in effect, if any.
    /// Collectives that step-annotate their internal rounds use this to
    /// save and restore an enclosing algorithm's annotation.
    #[inline]
    pub fn current_round(&self) -> Option<u64> {
        self.round.get()
    }

    /// Tags subsequently recorded flight events with a request id, so the
    /// per-vector work of a batched serving run is attributable to the
    /// concrete request it serves. Clear with [`Comm::clear_request`].
    #[inline]
    pub fn annotate_request(&self, id: u64) {
        self.request.set(Some(id));
    }

    /// Clears the request-id annotation.
    #[inline]
    pub fn clear_request(&self) {
        self.request.set(None);
    }

    /// The request-id annotation currently in effect, if any.
    #[inline]
    pub fn current_request(&self) -> Option<u64> {
        self.request.get()
    }

    /// Records a named numeric sample ([`CommEventKind::Counter`]) in the
    /// event trace, attributed to the innermost active phase — e.g. the
    /// compiled-plan kernel's `plan:arena_bytes` / `plan:fresh_allocs`
    /// gauges. Free when tracing is disabled (one branch, no clock read,
    /// no allocation) — the zero-cost-tracing guarantee extends to
    /// counters.
    #[inline]
    pub fn annotate_counter(&self, key: &'static str, value: u64) {
        self.record(CommEventKind::Counter { key, value });
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks `P`.
    #[inline]
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Records one injected fault in the trace and the flight ring, so a
    /// post-mortem can tell chaos apart from organic failures.
    fn record_fault(&self, fault: InjectedFault, peer: usize, words: u64) {
        self.record(CommEventKind::Fault { fault, peer, words });
        self.record_flight(FlightKind::Fault, Some(peer), words);
    }

    /// Trips the universe's shared abort flag, attributed to this rank at
    /// its current phase/round — the fail-fast signal. Every peer blocked
    /// in [`Comm::recv`] observes it within one abort-poll interval
    /// (sub-100 ms) and returns [`CommError::Disconnected`]. First caller
    /// wins the attribution; later trips are no-ops on the info slot.
    ///
    /// Collectives call this on their first receive failure so a deserted
    /// collective errors on *every* surviving rank instead of leaving the
    /// others to block out their own full timeouts.
    pub fn fail_fast(&self) {
        self.abort.trip(AbortInfo {
            rank: self.rank,
            phase: self.phase.get(),
            round: self.round.get(),
        });
    }

    /// Sends `data` to `dst` with a user `tag`. Non-blocking (links are
    /// unbounded); counts `data.len()` words and one message.
    ///
    /// Counters, trace and flight records are charged only for messages
    /// that actually enter the network: a send to a rank that has already
    /// exited (its receiver is gone) and a chaos-injected drop both leave
    /// the word counters untouched, so a post-mortem's counter/matrix
    /// reconciliation stays exact on failure paths.
    ///
    /// # Panics
    /// Panics on self-sends — local data movement is free in the model and
    /// should not go through the network. Panics with a `chaos:` message
    /// when an installed [`FaultPlan`] crashes this rank here.
    pub fn send(&self, dst: usize, tag: u64, data: Vec<f64>) {
        assert_ne!(
            dst, self.rank,
            "rank {}: self-send (local copies are not communication)",
            self.rank
        );
        if let Some(faults) = &self.faults {
            let mut st = faults.borrow_mut();
            if st.crash_due(self.rank, self.phase.get(), self.round.get()) {
                drop(st);
                self.record_fault(InjectedFault::Crash, dst, data.len() as u64);
                self.fail_fast();
                panic!("chaos: injected crash on rank {} (send)", self.rank);
            }
            let action = st.on_send(self.rank);
            drop(st);
            match action {
                SendAction::Deliver => {}
                SendAction::Drop => {
                    // Discarded before reaching the network: no counters, no
                    // send record — only the fault record shows the intent.
                    self.record_fault(InjectedFault::Drop, dst, data.len() as u64);
                    return;
                }
                SendAction::Duplicate => {
                    self.record_fault(InjectedFault::Duplicate, dst, data.len() as u64);
                    // The duplicate is a network artifact the receiver
                    // dedups on intake; it is not charged as traffic.
                    let _ = self.senders[dst].send(Msg {
                        src: self.rank,
                        tag,
                        data: data.clone(),
                        dup: true,
                    });
                }
                SendAction::Delay(delay) => {
                    self.record_fault(InjectedFault::Delay, dst, data.len() as u64);
                    std::thread::sleep(delay);
                }
            }
        }
        let words = data.len() as u64;
        // An Err means the destination already exited; the message never
        // entered the network, so it must not appear in the cost counters.
        if self.senders[dst].send(Msg { src: self.rank, tag, data, dup: false }).is_ok() {
            let counters = self.counters.rank(self.rank);
            // ordering: Relaxed — monotone single-writer cost counters.
            counters.words_sent.fetch_add(words, Ordering::Relaxed);
            counters.msgs_sent.fetch_add(1, Ordering::Relaxed);
            self.record(CommEventKind::Send { dst, tag, words });
            self.record_flight(FlightKind::Send, Some(dst), words);
            if let Some(h) = &self.telemetry {
                h.plane.rank_cell(self.rank).on_send(self.tele_slot(h), words);
                self.poll_alerts(h);
            }
        }
    }

    /// Fires any chaos crash scheduled for this rank at the current
    /// phase/round — shared prologue of every receive entry point, so an
    /// injected crash surfaces identically whether the rank was about to
    /// block, poll, or drain.
    fn check_crash_fault(&self, peer: usize) {
        if let Some(faults) = &self.faults {
            if faults.borrow().crash_due(self.rank, self.phase.get(), self.round.get()) {
                self.record_fault(InjectedFault::Crash, peer, 0);
                self.fail_fast();
                panic!("chaos: injected crash on rank {} (recv)", self.rank);
            }
        }
    }

    /// Claims the earliest buffered message matching `filter`, preserving
    /// arrival order among the rest. `Vec::remove` (not `swap_remove`) is
    /// load-bearing: two messages with the same `(src, tag)` — e.g. the
    /// pipelined serving path's back-to-back gather batches — must be
    /// claimed in the order they arrived.
    fn mailbox_claim(&self, filter: impl Fn(&Msg) -> bool) -> Option<Msg> {
        let mut mailbox = self.mailbox.borrow_mut();
        let pos = mailbox.iter().position(filter)?;
        Some(mailbox.remove(pos))
    }

    /// Receives the message from `src` carrying `tag`, buffering any other
    /// messages that arrive first. Errors after the configured timeout, or
    /// with [`CommError::Disconnected`] as soon as the universe's abort
    /// flag reports that a peer rank panicked (polled at the universe's
    /// poll interval while blocked, so a dead peer never costs the full
    /// timeout).
    pub fn recv(&self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        match self.recv_any(&[(src, tag)]) {
            Ok((_, _, data)) => Ok(data),
            Err(err) => Err(err),
        }
    }

    /// Receives the earliest-arrived message matching **any** of the
    /// `(src, tag)` candidates — the progress-engine primitive behind the
    /// overlapped exchange: a rank drains whichever peer's piece lands
    /// first instead of receiving in fixed schedule order. Returns the
    /// matched `(src, tag)` alongside the payload, with exactly the same
    /// counter/trace/flight/fault accounting as [`Comm::recv`].
    ///
    /// Timeout and disconnect errors are attributed to the first candidate
    /// (the set blocks as a unit; there is no single expected peer).
    ///
    /// # Panics
    /// Panics if `candidates` is empty, or with a `chaos:` message when an
    /// installed [`crate::FaultPlan`] crashes this rank here.
    pub fn recv_any(
        &self,
        candidates: &[(usize, u64)],
    ) -> Result<(usize, u64, Vec<f64>), CommError> {
        let (from, want_tag) = *candidates.first().expect("recv_any: empty candidate set");
        self.check_crash_fault(from);
        let matches = |m: &Msg| candidates.iter().any(|&(s, t)| m.src == s && m.tag == t);
        // Check the mailbox first: earliest arrival among all candidates.
        if let Some(msg) = self.mailbox_claim(matches) {
            let (src, tag) = (msg.src, msg.tag);
            return Ok((src, tag, self.account_recv(msg)));
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            if self.abort.tripped() {
                return Err(CommError::Disconnected {
                    rank: self.rank,
                    from,
                    tag: want_tag,
                    abort: self.abort.info(),
                });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { rank: self.rank, from, tag: want_tag });
            }
            match self.receiver.recv_timeout(remaining.min(self.poll_interval)) {
                Ok(msg) => {
                    if msg.dup {
                        // Chaos-injected duplicate: the receiver-side dedup
                        // discards it before matching or accounting.
                        continue;
                    }
                    if matches(&msg) {
                        let (src, tag) = (msg.src, msg.tag);
                        return Ok((src, tag, self.account_recv(msg)));
                    }
                    self.mailbox.borrow_mut().push(msg);
                }
                // Poll slice elapsed: loop to re-check abort and deadline.
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected {
                        rank: self.rank,
                        from,
                        tag: want_tag,
                        abort: self.abort.info(),
                    });
                }
            }
        }
    }

    /// Non-blocking [`Comm::recv`]: claims the message from `src` with
    /// `tag` if one has already arrived (mailbox first, then a drain of
    /// the channel), buffering non-matching arrivals exactly like `recv`.
    /// Returns `None` when no matching message is available yet — the
    /// caller keeps computing and polls again later. Accounting is
    /// identical to [`Comm::recv`] for claimed messages.
    pub fn try_recv(&self, src: usize, tag: u64) -> Option<Vec<f64>> {
        self.check_crash_fault(src);
        if let Some(msg) = self.mailbox_claim(|m| m.src == src && m.tag == tag) {
            return Some(self.account_recv(msg));
        }
        // Drain whatever the channel holds right now; either the match is
        // among it or everything lands in the mailbox for later claims.
        while let Ok(msg) = self.receiver.try_recv() {
            if msg.dup {
                continue;
            }
            if msg.src == src && msg.tag == tag {
                return Some(self.account_recv(msg));
            }
            self.mailbox.borrow_mut().push(msg);
        }
        None
    }

    fn account_recv(&self, msg: Msg) -> Vec<f64> {
        let counters = self.counters.rank(self.rank);
        // ordering: Relaxed — monotone counters, as on the send path.
        counters.words_recv.fetch_add(msg.data.len() as u64, Ordering::Relaxed);
        counters.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.record(CommEventKind::Recv {
            src: msg.src,
            tag: msg.tag,
            words: msg.data.len() as u64,
        });
        self.record_flight(FlightKind::Recv, Some(msg.src), msg.data.len() as u64);
        if let Some(h) = &self.telemetry {
            h.plane.rank_cell(self.rank).on_recv(self.tele_slot(h), msg.data.len() as u64);
            self.poll_alerts(h);
        }
        msg.data
    }

    /// Whether a live telemetry plane is attached to this run.
    #[inline]
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// The telemetry phase slot for the innermost active phase, via the
    /// handle's one-entry cache: the common case (same phase as the last
    /// publish) is a single pointer compare; a miss resolves the label
    /// through the plane's registry once and re-primes the cache.
    #[inline]
    fn tele_slot(&self, h: &TelemetryHandle) -> usize {
        let label = self.phase.get();
        if label != h.cached_label.get() {
            h.cached_label.set(label);
            h.cached_slot.set(match label {
                // `None` → UNPHASED, which is always slot 0.
                None => 0,
                Some(name) => h.plane.phase_slot(name),
            });
        }
        h.cached_slot.get()
    }

    /// Stamps any alerts raised on the plane since this rank last looked
    /// into the rank's own flight ring ([`FlightKind::Alert`], alert id in
    /// the word field). The steady-state cost — no new alerts — is one
    /// relaxed load.
    fn poll_alerts(&self, h: &TelemetryHandle) {
        let count = h.plane.alert_count();
        if count == h.seen_alerts.get() {
            return;
        }
        for alert in h.plane.alerts_since(h.seen_alerts.get()) {
            self.record_flight(FlightKind::Alert, None, alert.id);
        }
        h.seen_alerts.set(count);
    }

    /// Adds `value` to the named telemetry gauge on this rank's cell.
    /// No-op (one branch) when no plane is attached.
    #[inline]
    pub fn telemetry_gauge_add(&self, name: &'static str, value: u64) {
        if let Some(h) = &self.telemetry {
            let slot = h.plane.gauge_slot(name);
            h.plane.rank_cell(self.rank).gauge_add(slot, value);
        }
    }

    /// Sets the named telemetry gauge on this rank's cell to `value`.
    /// No-op (one branch) when no plane is attached.
    #[inline]
    pub fn telemetry_gauge_set(&self, name: &'static str, value: u64) {
        if let Some(h) = &self.telemetry {
            let slot = h.plane.gauge_slot(name);
            h.plane.rank_cell(self.rank).gauge_set(slot, value);
        }
    }

    /// Records `value` into the named telemetry rolling histogram on this
    /// rank's cell. No-op (one branch) when no plane is attached.
    #[inline]
    pub fn telemetry_observe(&self, name: &'static str, value: u64) {
        if let Some(h) = &self.telemetry {
            let slot = h.plane.hist_slot(name);
            h.plane.rank_cell(self.rank).observe(slot, h.plane.now_ns(), value);
        }
    }

    /// Publishes the flight recorder's accumulated self-overhead as the
    /// `flight:overhead_ns` gauge — called by the universe after the
    /// rank's closure returns, so scrapes see the final figure.
    pub(crate) fn publish_flight_overhead(&self) {
        if let Some(h) = &self.telemetry {
            let slot = h.plane.gauge_slot(telemetry_keys::FLIGHT_OVERHEAD_NS);
            h.plane.rank_cell(self.rank).gauge_set(slot, self.flight.borrow().overhead_ns());
        }
    }

    /// Simultaneous send to and receive from `partner` (the "sendrecv"
    /// exchange used by pairwise schedules).
    pub fn exchange(
        &self,
        partner: usize,
        tag: u64,
        data: Vec<f64>,
    ) -> Result<Vec<f64>, CommError> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Records participation in one synchronous communication round (for
    /// step-counted schedules, Theorem 7.2).
    pub fn count_round(&self) {
        // ordering: Relaxed — monotone round counter.
        self.counters.rank(self.rank).rounds.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;
    use std::time::Duration;

    #[test]
    fn exchange_swaps_payloads() {
        let (results, report) = Universe::new(2).run(|comm| {
            let partner = 1 - comm.rank();
            let got = comm.exchange(partner, 0, vec![comm.rank() as f64]).unwrap();
            got[0]
        });
        assert_eq!(results, vec![1.0, 0.0]);
        assert_eq!(report.per_rank[0].words_sent, 1);
        assert_eq!(report.per_rank[0].words_recv, 1);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_panics() {
        Universe::new(1).run(|comm| comm.send(0, 0, vec![1.0]));
    }

    #[test]
    fn timeout_error_mentions_parties() {
        let universe = Universe::new(2)
            .with_recv_timeout(Duration::from_millis(20))
            .with_poll_interval(Duration::from_millis(2));
        let (results, _) = universe.run(|comm| {
            if comm.rank() == 0 {
                format!("{}", comm.recv(1, 5).unwrap_err())
            } else {
                String::new()
            }
        });
        assert!(results[0].contains("rank 0"));
        assert!(results[0].contains("rank 1"));
        assert!(results[0].contains("tag 5"));
    }

    #[test]
    fn rounds_counter() {
        let (_, report) = Universe::new(3).run(|comm| {
            for _ in 0..comm.rank() {
                comm.count_round();
            }
        });
        assert_eq!(report.per_rank[2].rounds, 2);
        assert_eq!(report.max_rounds(), 2);
    }

    #[test]
    fn many_messages_in_flight() {
        // Unbounded links: a rank may send many messages before the peer
        // receives any.
        let (results, _) = Universe::new(2).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..100u64 {
                    comm.send(1, i, vec![i as f64]);
                }
                0.0
            } else {
                // Drain in reverse order to exercise the mailbox heavily.
                let mut total = 0.0;
                for i in (0..100u64).rev() {
                    total += comm.recv(0, i).unwrap()[0];
                }
                total
            }
        });
        assert_eq!(results[1], 4950.0);
    }

    #[test]
    fn mailbox_preserves_arrival_order_for_same_src_tag() {
        // Four messages buffer in the mailbox while rank 0 claims tag 30
        // first; claiming tag 20 from the *front* of the mailbox must not
        // reorder the two remaining tag-10 messages (a swap-remove would
        // hand back 2.0 before 1.0). The pipelined serving path depends on
        // this: consecutive batches reuse the same (src, tag) pair.
        let (results, _) = Universe::new(2).run(|comm| {
            if comm.rank() == 1 {
                comm.send(0, 20, vec![9.0]);
                comm.send(0, 10, vec![1.0]);
                comm.send(0, 10, vec![2.0]);
                comm.send(0, 30, vec![7.0]);
                vec![]
            } else {
                let c = comm.recv(1, 30).unwrap(); // buffers 20, 10, 10
                let b = comm.recv(1, 20).unwrap(); // removes the front entry
                let first = comm.recv(1, 10).unwrap();
                let second = comm.recv(1, 10).unwrap();
                vec![c[0], b[0], first[0], second[0]]
            }
        });
        assert_eq!(results[0], vec![7.0, 9.0, 1.0, 2.0]);
    }

    #[test]
    fn try_recv_claims_only_arrived_messages() {
        let (results, report) = Universe::new(2).run(|comm| {
            if comm.rank() == 1 {
                assert!(comm.try_recv(0, 99).is_none(), "nothing sent yet");
                comm.send(0, 5, vec![1.5, 2.5]);
                comm.barrier();
                0.0
            } else {
                assert!(comm.try_recv(1, 99).is_none(), "wrong tag never matches");
                comm.barrier();
                // After the barrier the send has happened: the message is
                // in the channel, so a non-blocking claim must find it.
                let data = comm.try_recv(1, 5).expect("message must be available");
                assert!(comm.try_recv(1, 5).is_none(), "claimed exactly once");
                data.iter().sum()
            }
        });
        assert_eq!(results[0], 4.0);
        assert_eq!(report.per_rank[0].words_recv, 2);
        assert_eq!(report.per_rank[0].msgs_recv, 1);
        assert_eq!(report.per_rank[1].words_sent, 2);
    }

    #[test]
    fn recv_any_drains_candidates_with_exact_accounting() {
        // Rank 0 drains one message from each of three peers in whatever
        // order they land; the claimed set and the counters must match a
        // fixed-order drain exactly.
        let p = 4;
        let (results, report) = Universe::new(p).run(|comm| {
            if comm.rank() == 0 {
                let mut candidates: Vec<(usize, u64)> =
                    (1..p).map(|src| (src, 40 + src as u64)).collect();
                let mut got = vec![0.0; p];
                while !candidates.is_empty() {
                    let (src, tag, data) = comm.recv_any(&candidates).unwrap();
                    assert_eq!(tag, 40 + src as u64);
                    got[src] = data[0];
                    candidates.retain(|&(s, _)| s != src);
                }
                // A drained candidate set cannot be claimed twice.
                assert!(comm.try_recv(1, 41).is_none());
                got.iter().sum::<f64>()
            } else {
                comm.send(0, 40 + comm.rank() as u64, vec![comm.rank() as f64; 3]);
                0.0
            }
        });
        assert_eq!(results[0], 6.0);
        assert_eq!(report.per_rank[0].msgs_recv, 3);
        assert_eq!(report.per_rank[0].words_recv, 9);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn recv_any_rejects_an_empty_candidate_set() {
        Universe::new(1).run(|comm| {
            let _ = comm.recv_any(&[]);
        });
    }

    #[test]
    fn short_poll_interval_fails_fast_quickly() {
        use std::time::Instant;
        // With a 2 ms poll interval a panicking peer surfaces to blocked
        // receivers within a few milliseconds instead of the default 25 ms
        // granularity — the chaos suites rely on this to keep wall-clock
        // down.
        let start = Instant::now();
        let universe = Universe::new(2).with_poll_interval(Duration::from_millis(2));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            universe.run(|comm| {
                if comm.rank() == 1 {
                    panic!("deliberate failure");
                }
                assert!(matches!(comm.recv(1, 0), Err(crate::CommError::Disconnected { .. })));
            })
        }));
        assert!(outcome.is_err());
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn phases_nest_and_restore() {
        use crate::cost::CommEventKind;
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            assert_eq!(comm.current_phase(), None);
            comm.with_phase("outer", || {
                assert_eq!(comm.current_phase(), Some("outer"));
                comm.with_phase("inner", || {
                    assert_eq!(comm.current_phase(), Some("inner"));
                });
                assert_eq!(comm.current_phase(), Some("outer"));
                if comm.rank() == 0 {
                    comm.send(1, 9, vec![1.0, 2.0]);
                } else {
                    comm.recv(0, 9).unwrap();
                }
            });
            assert_eq!(comm.current_phase(), None);
        });
        // Each rank: enter(outer), enter(inner), exit(inner), send/recv
        // labelled "outer", exit(outer).
        for trace in &traces {
            let labels: Vec<_> = trace
                .iter()
                .map(|e| match e.kind {
                    CommEventKind::PhaseEnter { name, .. } => format!("+{name}"),
                    CommEventKind::PhaseExit { name, .. } => format!("-{name}"),
                    CommEventKind::Send { .. } => "send".to_string(),
                    CommEventKind::Recv { .. } => "recv".to_string(),
                    CommEventKind::Counter { key, .. } => format!("#{key}"),
                    CommEventKind::Fault { fault, .. } => format!("!{}", fault.label()),
                })
                .collect();
            assert_eq!(labels[..3], ["+outer", "+inner", "-inner"]);
            assert_eq!(labels[4], "-outer");
            let xfer = &trace[3];
            assert_eq!(xfer.phase, Some("outer"));
        }
    }

    #[test]
    fn round_annotation_attaches_to_events() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.annotate_round(4);
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0]);
            } else {
                comm.recv(0, 0).unwrap();
            }
            comm.clear_round();
        });
        for trace in &traces {
            assert_eq!(trace.len(), 1);
            assert_eq!(trace[0].round, Some(4));
        }
    }

    #[test]
    fn counters_attach_to_the_active_phase() {
        use crate::cost::CommEventKind;
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("compute:kernel", || {
                comm.annotate_counter("plan:arena_bytes", 4096);
            });
            comm.annotate_counter("loose", 1);
        });
        for trace in &traces {
            let samples: Vec<_> = trace
                .iter()
                .filter_map(|e| match e.kind {
                    CommEventKind::Counter { key, value } => Some((key, value, e.phase)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                samples,
                vec![("plan:arena_bytes", 4096, Some("compute:kernel")), ("loose", 1, None)]
            );
        }
        // Untraced, counters leave no trace and no cost.
        let (_, report) = Universe::new(2).run(|comm| {
            comm.annotate_counter("plan:fresh_allocs", 7);
        });
        for cost in &report.per_rank {
            assert_eq!(cost.words_sent, 0);
            assert_eq!(cost.msgs_sent, 0);
        }
    }

    #[test]
    fn with_fallback_phase_defers_to_active_phase() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.with_phase("algo", || {
                comm.with_fallback_phase("coll", || {
                    if comm.rank() == 0 {
                        comm.send(1, 0, vec![1.0]);
                    } else {
                        comm.recv(0, 0).unwrap();
                    }
                });
            });
        });
        for trace in &traces {
            let xfer = trace.iter().find(|e| e.words() > 0).unwrap();
            assert_eq!(xfer.phase, Some("algo"));
        }
    }
}
