//! Atomic façade for the simulator's shared concurrency primitives (the
//! fail-fast abort flag, per-rank cost counters).
//!
//! Production builds re-export `std::sync::atomic` unchanged; under
//! `--cfg symtensor_check` (set via `RUSTFLAGS`, never a cargo feature)
//! the same names resolve to `symtensor-check`'s instrumented shim so
//! those primitives become scheduling points of the model checker. All
//! atomics in this crate must come from here — the `no-raw-atomics`
//! source lint enforces it.

#[cfg(symtensor_check)]
pub(crate) use symtensor_check::sync::{AtomicBool, AtomicU64, Ordering};

#[cfg(not(symtensor_check))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
