//! symtensor-chaos: deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] describes which messages to drop, delay or duplicate and
//! (optionally) which rank to crash at which `(phase, round)`. Install it
//! with [`crate::Universe::with_faults`]; the communicator consults the
//! plan on every send and receive. Every injected fault is recorded as a
//! [`crate::CommEventKind::Fault`] trace event and a
//! [`crate::FlightKind::Fault`] flight record, so a post-mortem dump can
//! distinguish *injected* failures from *organic* ones.
//!
//! Determinism is the whole point: the plan carries a seed for a xorshift
//! PRNG (no ambient entropy anywhere), each rank derives its own stream
//! from `seed ⊕ rank ⊕ attempt`, and one draw is consumed per send — so
//! the same plan against the same algorithm injects the same fault
//! sequence, run after run. A retry layer re-seeds per attempt with
//! [`FaultPlan::for_attempt`] so successive attempts see *different*
//! (still deterministic) faults.
//!
//! With every probability at zero and no crash scheduled, the layer is
//! observationally inert: counters, traces and flight windows are
//! bit-identical to a run without the plan installed.

use std::time::Duration;

/// A tiny xorshift64* PRNG — deterministic, seedable, no global state.
/// Used for fault decisions only; quality requirements are mild.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator. A zero seed (which xorshift cannot escape) is
    /// remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Crash a chosen rank at a chosen `(phase, round)`: the first send or
/// receive that rank executes while the phase label and round annotation
/// match panics with an attributable `chaos:` message. Parsed from the CLI
/// syntax `rank@phase:round` by [`CrashSpec::parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The rank to crash.
    pub rank: usize,
    /// Phase label that must be active ([`crate::Comm::with_phase`]).
    pub phase: String,
    /// Round annotation that must be active
    /// ([`crate::Comm::annotate_round`]).
    pub round: u64,
    /// Restrict the crash to one retry attempt (`None` = every attempt).
    /// Recovery tests use `Some(0)` so the first attempt dies and the
    /// retry succeeds.
    pub on_attempt: Option<u32>,
}

impl CrashSpec {
    /// Parses the CLI syntax `rank@phase:round`, e.g. `3@gather-x:2`.
    /// The phase label may itself contain `:` (e.g. `compute:kernel`) —
    /// the round is split off at the *last* colon.
    pub fn parse(s: &str) -> Result<CrashSpec, String> {
        let (rank_s, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("crash spec `{s}`: expected rank@phase:round"))?;
        let (phase, round_s) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("crash spec `{s}`: expected rank@phase:round"))?;
        let rank = rank_s.parse().map_err(|_| format!("crash spec `{s}`: bad rank `{rank_s}`"))?;
        let round =
            round_s.parse().map_err(|_| format!("crash spec `{s}`: bad round `{round_s}`"))?;
        if phase.is_empty() {
            return Err(format!("crash spec `{s}`: empty phase label"));
        }
        Ok(CrashSpec { rank, phase: phase.to_string(), round, on_attempt: None })
    }
}

/// What the chaos layer did to one message (or rank). Recorded in trace
/// events and flight records so post-mortems can separate injected faults
/// from organic failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// The message was silently discarded before reaching the network.
    Drop,
    /// Delivery was delayed by the plan's configured latency.
    Delay,
    /// A second, receiver-deduplicated copy was delivered.
    Duplicate,
    /// The rank was crashed at its scheduled `(phase, round)`.
    Crash,
}

impl InjectedFault {
    /// Stable lower-case label used in exported artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            InjectedFault::Drop => "drop",
            InjectedFault::Delay => "delay",
            InjectedFault::Duplicate => "duplicate",
            InjectedFault::Crash => "crash",
        }
    }
}

/// A deterministic fault-injection plan, installed on a universe with
/// [`crate::Universe::with_faults`]. Cloneable and cheap; each rank
/// derives an independent PRNG stream from the shared seed.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Master seed for the per-rank PRNG streams.
    pub seed: u64,
    /// Per-message probability of an injected drop.
    pub drop_prob: f64,
    /// Per-message probability of an injected duplicate delivery.
    pub dup_prob: f64,
    /// Per-message probability of an injected delivery delay.
    pub delay_prob: f64,
    /// How long a delayed delivery waits.
    pub delay: Duration,
    /// Deterministic crash of one rank at one `(phase, round)`.
    pub crash: Option<CrashSpec>,
    /// Exact drops: `(rank, nth)` discards the `nth` send (0-based, counted
    /// per rank) regardless of probabilities — the workhorse of the
    /// single-dropped-message property tests.
    pub drop_exact: Vec<(usize, u64)>,
    /// Which retry attempt this plan instance is serving (folded into the
    /// per-rank seeds; see [`FaultPlan::for_attempt`]).
    pub attempt: u32,
}

impl FaultPlan {
    /// A plan with the given seed and no faults — inert until a builder
    /// turns something on.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_micros(200),
            crash: None,
            drop_exact: Vec::new(),
            attempt: 0,
        }
    }

    /// Sets the per-message drop probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0, 1]");
        self.drop_prob = p;
        self
    }

    /// Sets the per-message duplicate probability.
    pub fn with_dup_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate probability must be in [0, 1]");
        self.dup_prob = p;
        self
    }

    /// Sets the per-message delay probability and the delay itself.
    pub fn with_delay(mut self, p: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability must be in [0, 1]");
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Schedules a deterministic rank crash.
    pub fn with_crash(mut self, crash: CrashSpec) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Discards `rank`'s `nth` send (0-based) unconditionally.
    pub fn drop_nth_send(mut self, rank: usize, nth: u64) -> Self {
        self.drop_exact.push((rank, nth));
        self
    }

    /// The same plan re-keyed for retry attempt `attempt`: probabilistic
    /// faults draw from fresh streams, and crashes restricted with
    /// [`CrashSpec::on_attempt`] fire only on their attempt.
    pub fn for_attempt(&self, attempt: u32) -> Self {
        let mut plan = self.clone();
        plan.attempt = attempt;
        plan
    }

    /// Whether the plan can inject anything at all on this attempt. When
    /// false the communicator skips per-message bookkeeping entirely, so an
    /// inert plan is observationally identical to no plan.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.delay_prob > 0.0
            || !self.drop_exact.is_empty()
            || self.crash.as_ref().is_some_and(|c| c.on_attempt.is_none_or(|a| a == self.attempt))
    }
}

/// What to do with one outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendAction {
    Deliver,
    Drop,
    Duplicate,
    Delay(Duration),
}

/// Per-rank chaos state held by the communicator: the plan, this rank's
/// PRNG stream, and a send counter for exact drops.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: XorShift64,
    sends: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan, rank: usize) -> Self {
        // Independent per-rank, per-attempt stream from the shared seed.
        let seed = plan.seed
            ^ (rank as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ ((plan.attempt as u64) << 32).wrapping_mul(0xD1B54A32D192ED03);
        FaultState { rng: XorShift64::new(seed), plan, sends: 0 }
    }

    /// One decision per outgoing message: exactly one PRNG draw, plus the
    /// exact-drop list. Deterministic in (seed, rank, attempt, send index).
    pub(crate) fn on_send(&mut self, rank: usize) -> SendAction {
        let nth = self.sends;
        self.sends += 1;
        let u = self.rng.next_f64();
        if self.plan.drop_exact.iter().any(|&(r, n)| r == rank && n == nth) {
            return SendAction::Drop;
        }
        if u < self.plan.drop_prob {
            SendAction::Drop
        } else if u < self.plan.drop_prob + self.plan.dup_prob {
            SendAction::Duplicate
        } else if u < self.plan.drop_prob + self.plan.dup_prob + self.plan.delay_prob {
            SendAction::Delay(self.plan.delay)
        } else {
            SendAction::Deliver
        }
    }

    /// Whether the scheduled crash fires here and now.
    pub(crate) fn crash_due(
        &self,
        rank: usize,
        phase: Option<&'static str>,
        round: Option<u64>,
    ) -> bool {
        let Some(crash) = &self.plan.crash else { return false };
        crash.rank == rank
            && crash.on_attempt.is_none_or(|a| a == self.plan.attempt)
            && phase == Some(crash.phase.as_str())
            && round == Some(crash.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_escapes_zero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
        for _ in 0..100 {
            let u = z.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn send_actions_are_deterministic_per_rank_and_attempt() {
        let plan = FaultPlan::seeded(7).with_drop_prob(0.3).with_dup_prob(0.2);
        let actions = |rank: usize, attempt: u32| -> Vec<SendAction> {
            let mut st = FaultState::new(plan.for_attempt(attempt), rank);
            (0..50).map(|_| st.on_send(rank)).collect()
        };
        assert_eq!(actions(0, 0), actions(0, 0), "same stream must replay identically");
        assert_ne!(actions(0, 0), actions(1, 0), "ranks draw from independent streams");
        assert_ne!(actions(0, 0), actions(0, 1), "attempts draw from independent streams");
        assert!(actions(0, 0).contains(&SendAction::Drop), "p=0.3 over 50 sends must drop");
    }

    #[test]
    fn inert_plan_always_delivers() {
        let mut st = FaultState::new(FaultPlan::seeded(9), 3);
        assert!(!st.plan.is_active());
        for _ in 0..100 {
            assert_eq!(st.on_send(3), SendAction::Deliver);
        }
    }

    #[test]
    fn exact_drop_hits_the_nth_send_only() {
        let plan = FaultPlan::seeded(1).drop_nth_send(2, 3);
        assert!(plan.is_active());
        let mut st = FaultState::new(plan, 2);
        let actions: Vec<SendAction> = (0..6).map(|_| st.on_send(2)).collect();
        assert_eq!(actions[3], SendAction::Drop);
        assert_eq!(actions.iter().filter(|&&a| a == SendAction::Drop).count(), 1);
    }

    #[test]
    fn crash_spec_parses_cli_syntax() {
        let spec = CrashSpec::parse("3@gather-x:2").unwrap();
        assert_eq!(
            spec,
            CrashSpec { rank: 3, phase: "gather-x".into(), round: 2, on_attempt: None }
        );
        // Phase labels may contain colons; the round splits at the last one.
        let spec = CrashSpec::parse("0@compute:kernel:5").unwrap();
        assert_eq!(spec.phase, "compute:kernel");
        assert_eq!(spec.round, 5);
        assert!(CrashSpec::parse("nope").is_err());
        assert!(CrashSpec::parse("x@p:1").is_err());
        assert!(CrashSpec::parse("1@p:y").is_err());
        assert!(CrashSpec::parse("1@:2").is_err());
    }

    #[test]
    fn crash_due_matches_phase_round_and_attempt() {
        let spec = CrashSpec { rank: 1, phase: "gather-x".into(), round: 4, on_attempt: Some(1) };
        let plan = FaultPlan::seeded(0).with_crash(spec);
        let st = FaultState::new(plan.for_attempt(1), 1);
        assert!(st.crash_due(1, Some("gather-x"), Some(4)));
        assert!(!st.crash_due(0, Some("gather-x"), Some(4)), "wrong rank");
        assert!(!st.crash_due(1, Some("reduce-y"), Some(4)), "wrong phase");
        assert!(!st.crash_due(1, Some("gather-x"), Some(3)), "wrong round");
        assert!(!st.crash_due(1, None, Some(4)), "no phase active");
        let st0 = FaultState::new(plan.for_attempt(0), 1);
        assert!(!st0.crash_due(1, Some("gather-x"), Some(4)), "restricted to attempt 1");
    }
}
