//! symtensor-flight: a fixed-capacity, bounded-memory ring-buffer flight
//! recorder embedded in every rank.
//!
//! Unlike the opt-in event trace ([`crate::cost::CommEvent`]), the flight
//! recorder is **always on**: every send, receive and phase transition is
//! packed into a preallocated ring of compact 20-byte records, so the last
//! window of activity on every rank survives a crash and can be drained
//! into a post-mortem dump. The design constraints, in order:
//!
//! 1. **never allocate after construction** — recording into a full ring
//!    overwrites the oldest record (counted in
//!    [`FlightOverhead::dropped`]), preserving the compiled-plan
//!    steady-state zero-allocation property witnessed by the counting
//!    global-allocator test;
//! 2. **bounded memory** — capacity × 20 bytes per rank, fixed up front;
//! 3. **measured self-overhead** — every record costs two clock reads; the
//!    second one charges the recording cost to
//!    [`FlightOverhead::overhead_ns`] so the recorder reports its own tax.
//!
//! Timestamps are delta-encoded as `u32` nanoseconds against the previous
//! record (deltas beyond ~4.29 s saturate and are counted in
//! [`FlightOverhead::saturated_deltas`]); phase labels are interned into a
//! small fixed table; peer / words / request-id are width-reduced with
//! saturation. Decoding ([`FlightRecorder::snapshot`]) reconstructs
//! absolute epoch-relative timestamps by walking the deltas backwards from
//! the last recorded instant.

/// Default ring capacity (records per rank) used by
/// [`crate::Universe::new`]. At 20 bytes per record this is 80 KiB per
/// rank — enough to hold the final schedule window of every experiment in
/// this repository.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Size of the phase-label intern table. The workspace uses about a dozen
/// distinct phase labels; overflow records carry no phase label (they are
/// not dropped).
const MAX_PHASES: usize = 32;

/// What a flight record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A message left this rank.
    Send,
    /// A message was claimed by this rank's `recv`.
    Recv,
    /// A [`crate::Comm::with_phase`] scope opened.
    PhaseEnter,
    /// A [`crate::Comm::with_phase`] scope closed.
    PhaseExit,
    /// A chaos-injected fault (see [`crate::fault::FaultPlan`]); `words`
    /// carries the affected message's size, `peer` its counterpart.
    Fault,
    /// An SLO burn-rate alert from the live telemetry plane, stamped by
    /// this rank when it noticed the alert (ranks poll the plane's alert
    /// count on every send/recv); `words` carries the alert id, so a
    /// post-mortem window shows exactly what the live plane saw — and
    /// when each rank saw it — before a failure.
    Alert,
}

/// Flag bit in [`Packed::kind`] marking a record in which at least one
/// field was clamped by width reduction — decoded into
/// [`FlightEvent::saturated`] so consumers never mistake an aliased value
/// (a clamped round, a >4 s delta, a truncated word count) for an exact
/// one.
const KIND_SATURATED: u8 = 0x80;

/// One packed ring record. 20 bytes; all lossy narrowings saturate and are
/// flagged per record (plus counted globally for deltas), never silently
/// wrapped.
#[derive(Clone, Copy, Default)]
struct Packed {
    /// Nanoseconds since the previous record (saturating).
    dt_ns: u32,
    /// [`FlightKind`] discriminant, with [`KIND_SATURATED`] in the top bit.
    kind: u8,
    /// Phase intern index + 1; 0 = no phase.
    phase: u8,
    /// Round + 1, saturating; 0 = no round annotation.
    round: u16,
    /// Peer rank; `u32::MAX` = not a point-to-point record.
    peer: u32,
    /// Payload words (saturating).
    words: u32,
    /// Request id + 1, saturating; 0 = no request annotation.
    request: u32,
}

/// A decoded flight record with absolute epoch-relative timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the universe epoch.
    pub t_ns: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// Innermost phase label active when recorded.
    pub phase: Option<&'static str>,
    /// Schedule-round annotation active when recorded.
    pub round: Option<u64>,
    /// Peer rank for `Send`/`Recv`.
    pub peer: Option<usize>,
    /// Payload words for `Send`/`Recv` (0 for phase records).
    pub words: u64,
    /// Request-id annotation active when recorded (batched serving).
    pub request: Option<u64>,
    /// True when any field of the packed record was clamped during width
    /// reduction (round ≥ 65535, timestamp delta > ~4.29 s, words or peer
    /// or request id beyond `u32` range) — the decoded values above are
    /// then lower bounds, not exact.
    pub saturated: bool,
}

/// The recorder's self-accounting: how much it recorded, lost and cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightOverhead {
    /// Ring capacity in records (0 = recorder disabled).
    pub capacity: usize,
    /// Total records ever offered to the ring.
    pub recorded: u64,
    /// Records evicted by wraparound (oldest-first). When non-zero the
    /// ring holds only the final `capacity`-record window and word-sum
    /// reconciliation against the cost counters is no longer exact.
    pub dropped: u64,
    /// Timestamp deltas that exceeded `u32::MAX` ns and were clamped.
    pub saturated_deltas: u64,
    /// Nanoseconds spent inside `record` calls, measured by the recorder
    /// itself (one extra clock read per record).
    pub overhead_ns: u64,
}

/// Everything drained from one rank's ring at the end of a run (or at a
/// crash), decoded into self-describing events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// The rank this ring belonged to.
    pub rank: usize,
    /// Decoded records, oldest first, timestamps non-decreasing.
    pub events: Vec<FlightEvent>,
    /// Self-accounting counters.
    pub overhead: FlightOverhead,
}

impl FlightSnapshot {
    /// Total words in `Send` records — reconciled against the comm matrix
    /// and hot-path counters by the post-mortem pipeline (exact only when
    /// `overhead.dropped == 0`).
    pub fn words_sent(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == FlightKind::Send).map(|e| e.words).sum()
    }

    /// Total words in `Recv` records.
    pub fn words_recv(&self) -> u64 {
        self.events.iter().filter(|e| e.kind == FlightKind::Recv).map(|e| e.words).sum()
    }
}

/// The per-rank ring buffer. All storage is allocated in [`new`]; every
/// later call is allocation-free.
///
/// [`new`]: FlightRecorder::new
pub struct FlightRecorder {
    ring: Vec<Packed>,
    /// Next write position (== oldest record once the ring has wrapped).
    head: usize,
    /// Live records (≤ capacity).
    len: usize,
    /// Timestamp of the most recent record.
    last_ns: u64,
    phases: [Option<&'static str>; MAX_PHASES],
    phase_count: usize,
    recorded: u64,
    dropped: u64,
    saturated_deltas: u64,
    overhead_ns: u64,
}

impl FlightRecorder {
    /// A recorder with room for `capacity` records; `capacity == 0`
    /// disables recording entirely (no ring, no clock reads).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: vec![Packed::default(); capacity],
            head: 0,
            len: 0,
            last_ns: 0,
            phases: [None; MAX_PHASES],
            phase_count: 0,
            recorded: 0,
            dropped: 0,
            saturated_deltas: 0,
            overhead_ns: 0,
        }
    }

    /// Whether the ring records anything. Callers check this before
    /// reading the clock so a disabled recorder costs one branch.
    #[inline]
    pub fn enabled(&self) -> bool {
        !self.ring.is_empty()
    }

    /// Interns a phase label; returns index + 1, or 0 when the label is
    /// `None` or the table is full (the record is still kept, unlabelled).
    fn intern_phase(&mut self, phase: Option<&'static str>) -> u8 {
        let Some(name) = phase else { return 0 };
        for (i, slot) in self.phases[..self.phase_count].iter().enumerate() {
            if *slot == Some(name) {
                return (i + 1) as u8;
            }
        }
        if self.phase_count < MAX_PHASES {
            self.phases[self.phase_count] = Some(name);
            self.phase_count += 1;
            self.phase_count as u8
        } else {
            0
        }
    }

    /// Appends one record. `now_ns` is the caller's clock read (nanoseconds
    /// since the universe epoch); the recorder never reads a clock itself.
    /// No-op when disabled. Never allocates.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        now_ns: u64,
        kind: FlightKind,
        phase: Option<&'static str>,
        round: Option<u64>,
        peer: Option<usize>,
        words: u64,
        request: Option<u64>,
    ) {
        if !self.enabled() {
            return;
        }
        let mut saturated = false;
        let dt = now_ns.saturating_sub(self.last_ns);
        let dt_ns = if dt > u32::MAX as u64 {
            self.saturated_deltas += 1;
            saturated = true;
            u32::MAX
        } else {
            dt as u32
        };
        self.last_ns = now_ns;
        // Rounds ≥ u16::MAX and request ids ≥ u32::MAX would alias to the
        // clamped maximum after decode; flag the record instead of letting
        // distinct values read back equal.
        saturated |= round.is_some_and(|r| r >= u16::MAX as u64)
            || peer.is_some_and(|p| p as u64 > u32::MAX as u64 - 1)
            || words > u32::MAX as u64
            || request.is_some_and(|r| r >= u32::MAX as u64);
        let packed = Packed {
            dt_ns,
            kind: kind as u8 | if saturated { KIND_SATURATED } else { 0 },
            phase: self.intern_phase(phase),
            round: round.map_or(0, |r| r.saturating_add(1).min(u16::MAX as u64) as u16),
            peer: peer.map_or(u32::MAX, |p| p.min(u32::MAX as usize - 1) as u32),
            words: words.min(u32::MAX as u64) as u32,
            request: request.map_or(0, |r| r.saturating_add(1).min(u32::MAX as u64) as u32),
        };
        self.ring[self.head] = packed;
        self.head = (self.head + 1) % self.ring.len();
        if self.len < self.ring.len() {
            self.len += 1;
        } else {
            self.dropped += 1;
        }
        self.recorded += 1;
    }

    /// Charges `ns` of measured recording cost to the self-overhead
    /// counter (the caller times its own `record` call with a monotonic
    /// `Instant`, so `ns` is non-negative by construction; the counter
    /// saturates rather than wrapping).
    #[inline]
    pub fn add_overhead(&mut self, ns: u64) {
        self.overhead_ns = self.overhead_ns.saturating_add(ns);
    }

    /// The accumulated self-overhead in nanoseconds — the lightweight
    /// getter behind the telemetry plane's recorder-overhead gauge
    /// (monotone and never negative, unlike a wall-clock difference on a
    /// coarse clock).
    #[inline]
    pub fn overhead_ns(&self) -> u64 {
        self.overhead_ns
    }

    /// Decodes the ring into chronological events with absolute
    /// timestamps. Allocates (it is called once, at drain time, outside
    /// the measured steady state).
    pub fn snapshot(&self, rank: usize) -> FlightSnapshot {
        // Oldest-first ring order.
        let start = if self.len < self.ring.len() { 0 } else { self.head };
        let packed: Vec<&Packed> =
            (0..self.len).map(|i| &self.ring[(start + i) % self.ring.len().max(1)]).collect();
        // Walk backwards from the last absolute timestamp: the newest
        // record sits at `last_ns`; each predecessor is its successor's
        // time minus the successor's delta.
        let mut times = vec![0u64; packed.len()];
        let mut t = self.last_ns;
        for i in (0..packed.len()).rev() {
            times[i] = t;
            if i > 0 {
                t = t.saturating_sub(packed[i].dt_ns as u64);
            }
        }
        let events = packed
            .iter()
            .zip(&times)
            .map(|(p, &t_ns)| FlightEvent {
                t_ns,
                kind: match p.kind & !KIND_SATURATED {
                    0 => FlightKind::Send,
                    1 => FlightKind::Recv,
                    2 => FlightKind::PhaseEnter,
                    3 => FlightKind::PhaseExit,
                    4 => FlightKind::Fault,
                    _ => FlightKind::Alert,
                },
                phase: if p.phase == 0 { None } else { self.phases[(p.phase - 1) as usize] },
                round: if p.round == 0 { None } else { Some(p.round as u64 - 1) },
                peer: if p.peer == u32::MAX { None } else { Some(p.peer as usize) },
                words: p.words as u64,
                request: if p.request == 0 { None } else { Some(p.request as u64 - 1) },
                saturated: p.kind & KIND_SATURATED != 0,
            })
            .collect();
        FlightSnapshot {
            rank,
            events,
            overhead: FlightOverhead {
                capacity: self.ring.len(),
                recorded: self.recorded,
                dropped: self.dropped,
                saturated_deltas: self.saturated_deltas,
                overhead_ns: self.overhead_ns,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(rec: &mut FlightRecorder, t: u64, peer: usize, words: u64) {
        rec.record(t, FlightKind::Send, Some("gather-x"), Some(3), Some(peer), words, Some(42));
    }

    #[test]
    fn roundtrip_preserves_fields_and_absolute_times() {
        let mut rec = FlightRecorder::new(8);
        send(&mut rec, 100, 1, 64);
        rec.record(250, FlightKind::Recv, None, None, Some(2), 32, None);
        rec.record(260, FlightKind::PhaseExit, Some("gather-x"), None, None, 0, None);
        let snap = rec.snapshot(5);
        assert_eq!(snap.rank, 5);
        assert_eq!(snap.events.len(), 3);
        assert_eq!(
            snap.events[0],
            FlightEvent {
                t_ns: 100,
                kind: FlightKind::Send,
                phase: Some("gather-x"),
                round: Some(3),
                peer: Some(1),
                words: 64,
                request: Some(42),
                saturated: false,
            }
        );
        assert_eq!(snap.events[1].t_ns, 250);
        assert_eq!(snap.events[1].phase, None);
        assert_eq!(snap.events[2].t_ns, 260);
        assert_eq!(snap.events[2].kind, FlightKind::PhaseExit);
        assert_eq!(snap.overhead.recorded, 3);
        assert_eq!(snap.overhead.dropped, 0);
        assert_eq!(snap.words_sent(), 64);
        assert_eq!(snap.words_recv(), 32);
    }

    #[test]
    fn wraparound_keeps_the_newest_window_and_counts_drops() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            send(&mut rec, i * 10, (i % 3) as usize, i);
        }
        let snap = rec.snapshot(0);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.overhead.recorded, 10);
        assert_eq!(snap.overhead.dropped, 6);
        // The surviving window is the last four records, in order.
        let times: Vec<u64> = snap.events.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![60, 70, 80, 90]);
        let words: Vec<u64> = snap.events.iter().map(|e| e.words).collect();
        assert_eq!(words, vec![6, 7, 8, 9]);
    }

    #[test]
    fn timestamps_stay_monotone_even_with_saturated_deltas() {
        let mut rec = FlightRecorder::new(8);
        send(&mut rec, 0, 0, 1);
        // A delta far beyond u32::MAX ns saturates but must not corrupt
        // ordering of later records.
        send(&mut rec, 20_000_000_000, 0, 2);
        send(&mut rec, 20_000_000_100, 0, 3);
        let snap = rec.snapshot(0);
        assert_eq!(snap.overhead.saturated_deltas, 1);
        let times: Vec<u64> = snap.events.iter().map(|e| e.t_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "non-monotone: {times:?}");
        assert_eq!(*times.last().unwrap(), 20_000_000_100);
        // The record whose delta clamped is flagged; its neighbours are not.
        let flags: Vec<bool> = snap.events.iter().map(|e| e.saturated).collect();
        assert_eq!(flags, vec![false, true, false]);
    }

    #[test]
    fn clamped_rounds_are_flagged_not_silently_aliased() {
        let mut rec = FlightRecorder::new(8);
        // Exactly representable: round 65533 (stored as 65534).
        rec.record(0, FlightKind::Send, None, Some(u16::MAX as u64 - 2), Some(0), 1, None);
        // First aliasing value and far beyond: both clamp to the same
        // stored maximum, so both must carry the saturated flag.
        rec.record(1, FlightKind::Send, None, Some(u16::MAX as u64), Some(0), 1, None);
        rec.record(2, FlightKind::Send, None, Some(u64::MAX), Some(0), 1, None);
        // Word counts beyond u32 clamp and flag too.
        rec.record(3, FlightKind::Send, None, None, Some(0), u64::MAX, None);
        let snap = rec.snapshot(0);
        assert_eq!(snap.events[0].round, Some(u16::MAX as u64 - 2));
        assert!(!snap.events[0].saturated, "exactly-representable round must not be flagged");
        assert!(snap.events[1].saturated && snap.events[2].saturated);
        assert_eq!(snap.events[1].round, snap.events[2].round, "clamped values alias…");
        assert!(snap.events[1].saturated, "…but the flag says they are not exact");
        assert!(snap.events[3].saturated);
        assert_eq!(snap.events[3].words, u32::MAX as u64);
    }

    #[test]
    fn fault_kind_roundtrips() {
        let mut rec = FlightRecorder::new(4);
        rec.record(5, FlightKind::Fault, Some("gather-x"), Some(1), Some(2), 9, None);
        let snap = rec.snapshot(1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, FlightKind::Fault);
        assert_eq!(snap.events[0].peer, Some(2));
        assert_eq!(snap.events[0].words, 9);
        assert!(!snap.events[0].saturated);
        // Fault records are not Send records: word sums stay clean.
        assert_eq!(snap.words_sent(), 0);
    }

    #[test]
    fn alert_kind_roundtrips_with_its_id_in_the_word_field() {
        let mut rec = FlightRecorder::new(4);
        rec.record(5, FlightKind::Alert, Some("reduce-y"), None, None, 3, None);
        let snap = rec.snapshot(2);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, FlightKind::Alert);
        assert_eq!(snap.events[0].words, 3, "alert id travels in the word field");
        assert_eq!(snap.events[0].phase, Some("reduce-y"));
        // Alert records are neither sends nor receives: word sums stay clean.
        assert_eq!(snap.words_sent() + snap.words_recv(), 0);
    }

    #[test]
    fn overhead_counter_is_monotone_and_saturates() {
        let mut rec = FlightRecorder::new(4);
        assert_eq!(rec.overhead_ns(), 0);
        rec.add_overhead(10);
        rec.add_overhead(5);
        assert_eq!(rec.overhead_ns(), 15);
        rec.add_overhead(u64::MAX);
        assert_eq!(rec.overhead_ns(), u64::MAX, "saturates instead of wrapping");
        assert_eq!(rec.snapshot(0).overhead.overhead_ns, u64::MAX);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut rec = FlightRecorder::new(0);
        assert!(!rec.enabled());
        send(&mut rec, 100, 0, 7);
        let snap = rec.snapshot(0);
        assert!(snap.events.is_empty());
        assert_eq!(snap.overhead.recorded, 0);
        assert_eq!(snap.overhead.capacity, 0);
    }

    #[test]
    fn phase_table_overflow_drops_labels_not_records() {
        // MAX_PHASES distinct labels fit; one more loses its label only.
        let labels: Vec<&'static str> = (0..MAX_PHASES + 1)
            .map(|i| &*Box::leak(format!("phase-{i}").into_boxed_str()))
            .collect();
        let mut rec = FlightRecorder::new(64);
        for (i, name) in labels.iter().enumerate() {
            rec.record(i as u64, FlightKind::PhaseEnter, Some(name), None, None, 0, None);
        }
        let snap = rec.snapshot(0);
        assert_eq!(snap.events.len(), MAX_PHASES + 1);
        assert_eq!(snap.events[0].phase, Some(labels[0]));
        assert_eq!(snap.events[MAX_PHASES - 1].phase, Some(labels[MAX_PHASES - 1]));
        assert_eq!(snap.events[MAX_PHASES].phase, None, "overflow label dropped, record kept");
    }
}
