//! Send/recv message matching over recorded traces.
//!
//! The profiler (`symtensor-obs`) needs to know, for every received
//! message, *which* send produced it: that pairing is the happens-before
//! edge set of the run, from which virtual-clock replay and critical-path
//! extraction follow. The simulator delivers messages over one unbounded
//! channel per destination and [`crate::Comm::recv`] claims them by
//! `(src, tag)` in arrival order, so within a `(src, dst, tag)` triple
//! message order is FIFO — matching the k-th send to the k-th recv of the
//! same triple reconstructs the exact pairing the run performed.

use crate::cost::{CommEvent, CommEventKind};
use std::collections::{HashMap, VecDeque};

/// One matched send/recv pair — a happens-before edge of the traced run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageMatch {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload length in words.
    pub words: u64,
    /// Send timestamp (ns since the universe epoch).
    pub send_t_ns: u64,
    /// Recv timestamp (ns since the universe epoch).
    pub recv_t_ns: u64,
    /// Index of the `Send` event in `traces[src]`.
    pub send_index: usize,
    /// Index of the `Recv` event in `traces[dst]`.
    pub recv_index: usize,
    /// Schedule-round annotation: the sender's if present, else the
    /// receiver's (pair schedules annotate both sides identically).
    pub round: Option<u64>,
    /// The sender's phase annotation at send time.
    pub send_phase: Option<&'static str>,
    /// The receiver's phase annotation at recv time.
    pub recv_phase: Option<&'static str>,
}

impl MessageMatch {
    /// Wall-clock interval between matching send and recv — an upper bound
    /// on how long the receiver sat blocked on this message (it includes
    /// any useful work the receiver did before posting the recv).
    pub fn transit_ns(&self) -> u64 {
        self.recv_t_ns.saturating_sub(self.send_t_ns)
    }
}

/// The result of matching a run's traces: the happens-before edges plus
/// whatever could not be paired.
#[derive(Clone, Debug, Default)]
pub struct MatchReport {
    /// All matched pairs, ordered by `(dst, recv_index)` — i.e. in each
    /// receiver's program order.
    pub matches: Vec<MessageMatch>,
    /// Sends with no matching recv in the traces (messages a peer never
    /// claimed, e.g. dropped on early exit).
    pub unmatched_sends: usize,
    /// Recvs with no matching send in the traces (only possible when the
    /// matcher is fed a truncated or partial sender log, e.g. a flight
    /// window that wrapped).
    pub unmatched_recvs: usize,
}

impl MatchReport {
    /// `true` when every send found its recv and vice versa — the normal
    /// state for a run collected with [`crate::Universe::run_traced`].
    pub fn complete(&self) -> bool {
        self.unmatched_sends == 0 && self.unmatched_recvs == 0
    }
}

/// Matches every `Send` event to its consuming `Recv` across per-rank
/// traces (indexed by rank, as returned by
/// [`crate::Universe::run_traced`]), FIFO per `(src, dst, tag)`.
///
/// # Panics
/// Panics if a matched pair disagrees on payload length — that would mean
/// the traces are not from one run.
pub fn match_messages(traces: &[Vec<CommEvent>]) -> MatchReport {
    // (src, dst, tag) -> queue of pending sends in sender program order.
    struct PendingSend {
        send_index: usize,
        t_ns: u64,
        words: u64,
        round: Option<u64>,
        phase: Option<&'static str>,
    }
    let mut pending: HashMap<(usize, usize, u64), VecDeque<PendingSend>> = HashMap::new();
    for (src, trace) in traces.iter().enumerate() {
        for (send_index, event) in trace.iter().enumerate() {
            if let CommEventKind::Send { dst, tag, words } = event.kind {
                pending.entry((src, dst, tag)).or_default().push_back(PendingSend {
                    send_index,
                    t_ns: event.t_ns,
                    words,
                    round: event.round,
                    phase: event.phase,
                });
            }
        }
    }

    let mut report = MatchReport::default();
    for (dst, trace) in traces.iter().enumerate() {
        for (recv_index, event) in trace.iter().enumerate() {
            if let CommEventKind::Recv { src, tag, words } = event.kind {
                match pending.get_mut(&(src, dst, tag)).and_then(VecDeque::pop_front) {
                    Some(send) => {
                        assert_eq!(
                            send.words, words,
                            "matched pair {src}->{dst} tag {tag} disagrees on length"
                        );
                        report.matches.push(MessageMatch {
                            src,
                            dst,
                            tag,
                            words,
                            send_t_ns: send.t_ns,
                            recv_t_ns: event.t_ns,
                            send_index: send.send_index,
                            recv_index,
                            round: send.round.or(event.round),
                            send_phase: send.phase,
                            recv_phase: event.phase,
                        });
                    }
                    None => report.unmatched_recvs += 1,
                }
            }
        }
    }
    report.unmatched_sends = pending.values().map(VecDeque::len).sum();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn ring_pass_matches_completely() {
        let p = 4;
        let (_, _, traces) = Universe::new(p).run_traced(|comm| {
            let next = (comm.rank() + 1) % p;
            let prev = (comm.rank() + p - 1) % p;
            comm.annotate_round(7);
            comm.send(next, 3, vec![comm.rank() as f64; 2]);
            comm.recv(prev, 3).unwrap();
            comm.clear_round();
        });
        let report = match_messages(&traces);
        assert!(report.complete());
        assert_eq!(report.matches.len(), p);
        for m in &report.matches {
            assert_eq!(m.dst, (m.src + 1) % p);
            assert_eq!(m.words, 2);
            assert_eq!(m.round, Some(7));
            assert!(m.recv_t_ns >= m.send_t_ns || m.transit_ns() == 0);
        }
    }

    #[test]
    fn fifo_per_triple_preserves_order() {
        // Two same-tag messages on one (src, dst) pair must match in send
        // order even though their payloads differ.
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![1.0]);
                comm.send(1, 9, vec![2.0, 2.0]);
            } else {
                comm.recv(0, 9).unwrap();
                comm.recv(0, 9).unwrap();
            }
        });
        let report = match_messages(&traces);
        assert!(report.complete());
        let mut words: Vec<u64> = report.matches.iter().map(|m| m.words).collect();
        words.sort_unstable();
        assert_eq!(words, vec![1, 2]);
        // First recv (index order) pairs with the 1-word first send.
        let first = report.matches.iter().min_by_key(|m| m.recv_index).unwrap();
        assert_eq!(first.words, 1);
    }

    #[test]
    fn unclaimed_send_is_reported() {
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1.0]);
                comm.send(1, 6, vec![2.0]); // never received
            } else {
                comm.recv(0, 5).unwrap();
            }
        });
        let report = match_messages(&traces);
        assert_eq!(report.matches.len(), 1);
        assert_eq!(report.unmatched_sends, 1);
        assert_eq!(report.unmatched_recvs, 0);
        assert!(!report.complete());
    }

    #[test]
    fn all_to_all_steps_are_round_annotated() {
        let p = 4;
        let (_, _, traces) = Universe::new(p).run_traced(|comm| {
            let bufs: Vec<Vec<f64>> = (0..p).map(|d| vec![0.0; d + 1]).collect();
            comm.all_to_all_v(bufs).unwrap()
        });
        let report = match_messages(&traces);
        assert!(report.complete());
        assert_eq!(report.matches.len(), p * (p - 1));
        for m in &report.matches {
            let round = m.round.expect("collective steps must be round-annotated");
            assert!(round < (p - 1) as u64);
            // Step s: dst = src + s + 1 (mod p) with round = s.
            assert_eq!(m.dst, (m.src + round as usize + 1) % p);
        }
        // Enclosing annotations survive the collective.
        let (_, _, traces) = Universe::new(2).run_traced(|comm| {
            comm.annotate_round(42);
            comm.all_to_all_v(vec![vec![1.0]; 2]).unwrap();
            let partner = 1 - comm.rank();
            comm.send(partner, 1, vec![1.0]);
            comm.recv(partner, 1).unwrap();
            comm.clear_round();
        });
        let report = match_messages(&traces);
        let after = report.matches.iter().find(|m| m.tag == 1).unwrap();
        assert_eq!(after.round, Some(42));
    }
}
