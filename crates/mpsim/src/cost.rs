//! Per-rank communication-cost counters, reports and trace events.
//!
//! In the α-β-γ model the bandwidth cost of an algorithm is the maximum over
//! processors of the number of words sent or received. These counters record
//! exactly that, plus message counts (the latency term) and the number of
//! synchronous communication rounds a rank participated in.
//!
//! When tracing is enabled ([`crate::Universe::with_tracing`] /
//! [`crate::Universe::run_traced`]) every send, receive and phase
//! transition is additionally recorded as a [`CommEvent`] carrying a
//! monotonic timestamp and the phase/round annotation active at the time.
//! The `symtensor-obs` crate consumes these logs to build span trees,
//! communication matrices and Perfetto traces.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// What happened in one trace event.
///
/// All payloads are `Copy` so that recording an event is a single `Vec`
/// push with no further allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommEventKind {
    /// A message left this rank.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload length in words.
        words: u64,
    },
    /// A message was consumed by a matching `recv` on this rank.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload length in words.
        words: u64,
    },
    /// A named phase was entered on this rank (see [`crate::Comm::with_phase`]).
    PhaseEnter {
        /// Phase name.
        name: &'static str,
        /// This rank's counters at entry — exit minus entry is the phase's
        /// exact [`RankCost`] delta.
        snapshot: RankCost,
    },
    /// The matching phase exit.
    PhaseExit {
        /// Phase name.
        name: &'static str,
        /// This rank's counters at exit.
        snapshot: RankCost,
    },
    /// A named numeric sample annotated by the algorithm (see
    /// [`crate::Comm::annotate_counter`]) — e.g. a kernel's arena bytes or
    /// steady-state allocation count. Attributed to the innermost active
    /// phase via [`CommEvent::phase`].
    Counter {
        /// Counter name (a static key, like phase names).
        key: &'static str,
        /// The sampled value.
        value: u64,
    },
    /// A chaos-injected fault (see [`crate::fault::FaultPlan`]) — recorded
    /// so post-mortems can separate injected failures from organic ones.
    /// Injected drops and duplicates move no accountable traffic, so this
    /// event contributes 0 to [`CommEvent::words`].
    Fault {
        /// What was injected.
        fault: crate::fault::InjectedFault,
        /// The peer the affected message addressed (destination for send-
        /// side faults, expected source for a crash inside `recv`).
        peer: usize,
        /// Words in the affected message (0 for a crash inside `recv`).
        words: u64,
    },
}

/// One timestamped, phase-annotated event recorded when tracing is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommEvent {
    /// Nanoseconds since the universe's epoch (monotonic within a rank).
    pub t_ns: u64,
    /// Innermost phase active when the event was recorded, if any.
    pub phase: Option<&'static str>,
    /// Schedule round annotation active when the event was recorded, if any
    /// (see [`crate::Comm::annotate_round`]).
    pub round: Option<u64>,
    /// The event payload.
    pub kind: CommEventKind,
}

impl CommEvent {
    /// Words moved by this event (0 for phase markers).
    pub fn words(&self) -> u64 {
        match self.kind {
            CommEventKind::Send { words, .. } | CommEventKind::Recv { words, .. } => words,
            _ => 0,
        }
    }
}

/// Internal shared counters, one set per rank.
#[derive(Clone)]
pub(crate) struct SharedCounters {
    inner: Arc<Vec<RankAtomics>>,
}

pub(crate) struct RankAtomics {
    pub words_sent: AtomicU64,
    pub words_recv: AtomicU64,
    pub msgs_sent: AtomicU64,
    pub msgs_recv: AtomicU64,
    pub rounds: AtomicU64,
}

impl RankAtomics {
    /// A consistent-enough snapshot of this rank's own counters (only the
    /// owning rank mutates them, so relaxed loads are exact here).
    pub fn snapshot(&self) -> RankCost {
        RankCost {
            // ordering: Relaxed — single-writer counters, exact when
            // read by the owner or after the join.
            words_sent: self.words_sent.load(Ordering::Relaxed),
            // ordering: Relaxed — same single-writer contract.
            words_recv: self.words_recv.load(Ordering::Relaxed),
            // ordering: Relaxed — same single-writer contract.
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            // ordering: Relaxed — same single-writer contract.
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }
}

impl SharedCounters {
    pub fn new(p: usize) -> Self {
        SharedCounters {
            inner: Arc::new(
                (0..p)
                    .map(|_| RankAtomics {
                        words_sent: AtomicU64::new(0),
                        words_recv: AtomicU64::new(0),
                        msgs_sent: AtomicU64::new(0),
                        msgs_recv: AtomicU64::new(0),
                        rounds: AtomicU64::new(0),
                    })
                    .collect(),
            ),
        }
    }

    #[inline]
    pub fn rank(&self, r: usize) -> &RankAtomics {
        &self.inner[r]
    }

    pub fn report(&self) -> CostReport {
        CostReport { per_rank: self.inner.iter().map(RankAtomics::snapshot).collect() }
    }
}

/// Communication cost incurred by one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankCost {
    /// Words (tensor/vector elements) pushed onto the network.
    pub words_sent: u64,
    /// Words pulled from the network.
    pub words_recv: u64,
    /// Number of messages sent.
    pub msgs_sent: u64,
    /// Number of messages received.
    pub msgs_recv: u64,
    /// Synchronous communication rounds participated in.
    pub rounds: u64,
}

impl RankCost {
    /// `max(sent, received)` — the per-rank bandwidth cost in the model
    /// where sends and receives overlap.
    pub fn bandwidth(&self) -> u64 {
        self.words_sent.max(self.words_recv)
    }

    /// Componentwise `self − earlier` (saturating); the exact cost incurred
    /// between two snapshots, e.g. across a phase.
    pub fn delta_since(&self, earlier: &RankCost) -> RankCost {
        RankCost {
            words_sent: self.words_sent.saturating_sub(earlier.words_sent),
            words_recv: self.words_recv.saturating_sub(earlier.words_recv),
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            msgs_recv: self.msgs_recv.saturating_sub(earlier.msgs_recv),
            rounds: self.rounds.saturating_sub(earlier.rounds),
        }
    }
}

/// Communication cost of a whole run, indexed by rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Per-rank counters, indexed by rank id.
    pub per_rank: Vec<RankCost>,
}

impl CostReport {
    /// Maximum words sent by any rank.
    pub fn max_words_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_sent).max().unwrap_or(0)
    }

    /// Maximum words received by any rank.
    pub fn max_words_recv(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_recv).max().unwrap_or(0)
    }

    /// The bandwidth cost of the algorithm: `max_p max(sent_p, recv_p)`.
    /// This is the quantity the paper's lower bound constrains.
    pub fn bandwidth_cost(&self) -> u64 {
        self.per_rank.iter().map(RankCost::bandwidth).max().unwrap_or(0)
    }

    /// Total words sent across all ranks (equals total received).
    pub fn total_words_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_sent).sum()
    }

    /// Total words received across all ranks.
    pub fn total_words_recv(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_recv).sum()
    }

    /// Maximum messages sent by any rank (the latency term).
    pub fn max_msgs_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.msgs_sent).max().unwrap_or(0)
    }

    /// Maximum rounds any rank participated in.
    pub fn max_rounds(&self) -> u64 {
        self.per_rank.iter().map(|c| c.rounds).max().unwrap_or(0)
    }

    /// Elementwise sum of two reports (e.g. setup + main phases).
    pub fn merged(&self, other: &CostReport) -> CostReport {
        assert_eq!(self.per_rank.len(), other.per_rank.len());
        CostReport {
            per_rank: self
                .per_rank
                .iter()
                .zip(&other.per_rank)
                .map(|(a, b)| RankCost {
                    words_sent: a.words_sent + b.words_sent,
                    words_recv: a.words_recv + b.words_recv,
                    msgs_sent: a.msgs_sent + b.msgs_sent,
                    msgs_recv: a.msgs_recv + b.msgs_recv,
                    rounds: a.rounds + b.rounds,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let report = CostReport {
            per_rank: vec![
                RankCost { words_sent: 10, words_recv: 4, msgs_sent: 2, msgs_recv: 1, rounds: 3 },
                RankCost { words_sent: 3, words_recv: 12, msgs_sent: 1, msgs_recv: 2, rounds: 5 },
            ],
        };
        assert_eq!(report.max_words_sent(), 10);
        assert_eq!(report.max_words_recv(), 12);
        assert_eq!(report.bandwidth_cost(), 12);
        assert_eq!(report.total_words_sent(), 13);
        assert_eq!(report.max_msgs_sent(), 2);
        assert_eq!(report.max_rounds(), 5);
    }

    #[test]
    fn empty_report() {
        let report = CostReport::default();
        assert_eq!(report.bandwidth_cost(), 0);
        assert_eq!(report.max_rounds(), 0);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = CostReport {
            per_rank: vec![RankCost {
                words_sent: 1,
                words_recv: 2,
                msgs_sent: 3,
                msgs_recv: 4,
                rounds: 5,
            }],
        };
        let b = CostReport {
            per_rank: vec![RankCost {
                words_sent: 10,
                words_recv: 20,
                msgs_sent: 30,
                msgs_recv: 40,
                rounds: 50,
            }],
        };
        let m = a.merged(&b);
        assert_eq!(m.per_rank[0].words_sent, 11);
        assert_eq!(m.per_rank[0].rounds, 55);
    }

    #[test]
    fn delta_since_subtracts() {
        let early =
            RankCost { words_sent: 2, words_recv: 1, msgs_sent: 1, msgs_recv: 1, rounds: 0 };
        let late = RankCost { words_sent: 9, words_recv: 4, msgs_sent: 3, msgs_recv: 2, rounds: 2 };
        let d = late.delta_since(&early);
        assert_eq!(
            d,
            RankCost { words_sent: 7, words_recv: 3, msgs_sent: 2, msgs_recv: 1, rounds: 2 }
        );
    }

    #[test]
    fn event_words_accessor() {
        let send = CommEvent {
            t_ns: 1,
            phase: Some("gather-x"),
            round: Some(0),
            kind: CommEventKind::Send { dst: 1, tag: 0, words: 7 },
        };
        assert_eq!(send.words(), 7);
        let marker = CommEvent {
            t_ns: 2,
            phase: None,
            round: None,
            kind: CommEventKind::PhaseEnter { name: "x", snapshot: RankCost::default() },
        };
        assert_eq!(marker.words(), 0);
    }
}
