//! Per-rank communication-cost counters and reports.
//!
//! In the α-β-γ model the bandwidth cost of an algorithm is the maximum over
//! processors of the number of words sent or received. These counters record
//! exactly that, plus message counts (the latency term) and the number of
//! synchronous communication rounds a rank participated in.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One communication event recorded when tracing is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommEvent {
    /// A message left this rank.
    Send {
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload length in words.
        words: u64,
    },
    /// A message was consumed by a matching `recv` on this rank.
    Recv {
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload length in words.
        words: u64,
    },
}

/// Internal shared counters, one set per rank.
#[derive(Clone)]
pub(crate) struct SharedCounters {
    inner: Arc<Vec<RankAtomics>>,
}

pub(crate) struct RankAtomics {
    pub words_sent: AtomicU64,
    pub words_recv: AtomicU64,
    pub msgs_sent: AtomicU64,
    pub msgs_recv: AtomicU64,
    pub rounds: AtomicU64,
}

impl SharedCounters {
    pub fn new(p: usize) -> Self {
        SharedCounters {
            inner: Arc::new(
                (0..p)
                    .map(|_| RankAtomics {
                        words_sent: AtomicU64::new(0),
                        words_recv: AtomicU64::new(0),
                        msgs_sent: AtomicU64::new(0),
                        msgs_recv: AtomicU64::new(0),
                        rounds: AtomicU64::new(0),
                    })
                    .collect(),
            ),
        }
    }

    #[inline]
    pub fn rank(&self, r: usize) -> &RankAtomics {
        &self.inner[r]
    }

    pub fn report(&self) -> CostReport {
        CostReport {
            per_rank: self
                .inner
                .iter()
                .map(|c| RankCost {
                    words_sent: c.words_sent.load(Ordering::Relaxed),
                    words_recv: c.words_recv.load(Ordering::Relaxed),
                    msgs_sent: c.msgs_sent.load(Ordering::Relaxed),
                    msgs_recv: c.msgs_recv.load(Ordering::Relaxed),
                    rounds: c.rounds.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Communication cost incurred by one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankCost {
    /// Words (tensor/vector elements) pushed onto the network.
    pub words_sent: u64,
    /// Words pulled from the network.
    pub words_recv: u64,
    /// Number of messages sent.
    pub msgs_sent: u64,
    /// Number of messages received.
    pub msgs_recv: u64,
    /// Synchronous communication rounds participated in.
    pub rounds: u64,
}

impl RankCost {
    /// `max(sent, received)` — the per-rank bandwidth cost in the model
    /// where sends and receives overlap.
    pub fn bandwidth(&self) -> u64 {
        self.words_sent.max(self.words_recv)
    }
}

/// Communication cost of a whole run, indexed by rank.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostReport {
    /// Per-rank counters, indexed by rank id.
    pub per_rank: Vec<RankCost>,
}

impl CostReport {
    /// Maximum words sent by any rank.
    pub fn max_words_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_sent).max().unwrap_or(0)
    }

    /// Maximum words received by any rank.
    pub fn max_words_recv(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_recv).max().unwrap_or(0)
    }

    /// The bandwidth cost of the algorithm: `max_p max(sent_p, recv_p)`.
    /// This is the quantity the paper's lower bound constrains.
    pub fn bandwidth_cost(&self) -> u64 {
        self.per_rank.iter().map(RankCost::bandwidth).max().unwrap_or(0)
    }

    /// Total words sent across all ranks (equals total received).
    pub fn total_words_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_sent).sum()
    }

    /// Total words received across all ranks.
    pub fn total_words_recv(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_recv).sum()
    }

    /// Maximum messages sent by any rank (the latency term).
    pub fn max_msgs_sent(&self) -> u64 {
        self.per_rank.iter().map(|c| c.msgs_sent).max().unwrap_or(0)
    }

    /// Maximum rounds any rank participated in.
    pub fn max_rounds(&self) -> u64 {
        self.per_rank.iter().map(|c| c.rounds).max().unwrap_or(0)
    }

    /// Elementwise sum of two reports (e.g. setup + main phases).
    pub fn merged(&self, other: &CostReport) -> CostReport {
        assert_eq!(self.per_rank.len(), other.per_rank.len());
        CostReport {
            per_rank: self
                .per_rank
                .iter()
                .zip(&other.per_rank)
                .map(|(a, b)| RankCost {
                    words_sent: a.words_sent + b.words_sent,
                    words_recv: a.words_recv + b.words_recv,
                    msgs_sent: a.msgs_sent + b.msgs_sent,
                    msgs_recv: a.msgs_recv + b.msgs_recv,
                    rounds: a.rounds + b.rounds,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let report = CostReport {
            per_rank: vec![
                RankCost { words_sent: 10, words_recv: 4, msgs_sent: 2, msgs_recv: 1, rounds: 3 },
                RankCost { words_sent: 3, words_recv: 12, msgs_sent: 1, msgs_recv: 2, rounds: 5 },
            ],
        };
        assert_eq!(report.max_words_sent(), 10);
        assert_eq!(report.max_words_recv(), 12);
        assert_eq!(report.bandwidth_cost(), 12);
        assert_eq!(report.total_words_sent(), 13);
        assert_eq!(report.max_msgs_sent(), 2);
        assert_eq!(report.max_rounds(), 5);
    }

    #[test]
    fn empty_report() {
        let report = CostReport::default();
        assert_eq!(report.bandwidth_cost(), 0);
        assert_eq!(report.max_rounds(), 0);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = CostReport {
            per_rank: vec![RankCost { words_sent: 1, words_recv: 2, msgs_sent: 3, msgs_recv: 4, rounds: 5 }],
        };
        let b = CostReport {
            per_rank: vec![RankCost { words_sent: 10, words_recv: 20, msgs_sent: 30, msgs_recv: 40, rounds: 50 }],
        };
        let m = a.merged(&b);
        assert_eq!(m.per_rank[0].words_sent, 11);
        assert_eq!(m.per_rank[0].rounds, 55);
    }
}
