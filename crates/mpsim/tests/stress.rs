//! Randomized stress tests for the message-passing runtime: arbitrary
//! point-to-point traffic patterns must deliver every payload exactly once
//! with exact cost accounting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_mpsim::Universe;

#[test]
fn random_traffic_patterns_deliver_exactly() {
    for trial in 0..8 {
        let mut rng = StdRng::seed_from_u64(5000 + trial);
        let p = 2 + rng.gen_range(0..6);
        // Random directed message list: (src, dst, tag, len).
        let msg_count = rng.gen_range(1..40);
        let mut msgs = Vec::new();
        for id in 0..msg_count {
            let src = rng.gen_range(0..p);
            let mut dst = rng.gen_range(0..p);
            if dst == src {
                dst = (dst + 1) % p;
            }
            let len = rng.gen_range(0..16);
            msgs.push((src, dst, id as u64, len));
        }
        let msgs_ref = &msgs;
        let (results, report) = Universe::new(p).run(|comm| {
            let me = comm.rank();
            // Send all my messages first (non-blocking), then receive mine
            // in a shuffled order to exercise the mailbox.
            for &(src, dst, tag, len) in msgs_ref {
                if src == me {
                    let payload: Vec<f64> =
                        (0..len).map(|w| (tag * 1000 + w as u64) as f64).collect();
                    comm.send(dst, tag, payload);
                }
            }
            let mut mine: Vec<_> = msgs_ref.iter().filter(|m| m.1 == me).collect();
            mine.reverse(); // force out-of-arrival-order receives
            let mut received = 0u64;
            for &&(src, _, tag, len) in &mine {
                let payload = comm.recv(src, tag).unwrap();
                assert_eq!(payload.len(), len);
                for (w, &v) in payload.iter().enumerate() {
                    assert_eq!(v, (tag * 1000 + w as u64) as f64);
                }
                received += 1;
            }
            received
        });
        let total_received: u64 = results.iter().sum();
        assert_eq!(total_received, msg_count as u64, "trial {trial}");
        // Cost conservation: total sent words == total received words.
        assert_eq!(report.total_words_sent(), report.total_words_recv(), "trial {trial}");
        let expected_words: u64 = msgs.iter().map(|m| m.3 as u64).sum();
        assert_eq!(report.total_words_sent(), expected_words, "trial {trial}");
    }
}

#[test]
fn interleaved_collectives_and_p2p_do_not_cross_talk() {
    let p = 6;
    let (results, _) = Universe::new(p).run(|comm| {
        let me = comm.rank();
        // P2P ring traffic with tags in the user range…
        comm.send((me + 1) % p, 7, vec![me as f64]);
        // …interleaved with two different collectives…
        let gathered = comm.all_gather(vec![me as f64 * 10.0]).unwrap();
        let reduced = comm.all_reduce(vec![1.0]).unwrap();
        // …and the p2p recv afterwards.
        let ring = comm.recv((me + p - 1) % p, 7).unwrap();
        (ring[0], gathered[3][0], reduced[0])
    });
    for (rank, &(ring, g3, total)) in results.iter().enumerate() {
        assert_eq!(ring, ((rank + p - 1) % p) as f64);
        assert_eq!(g3, 30.0);
        assert_eq!(total, p as f64);
    }
}

#[test]
fn repeated_universes_are_independent() {
    for _ in 0..5 {
        let (_, report) = Universe::new(3).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0; 10]);
            } else if comm.rank() == 1 {
                comm.recv(0, 0).unwrap();
            }
        });
        assert_eq!(report.total_words_sent(), 10);
    }
}

#[test]
fn tracing_records_every_event_in_order() {
    use symtensor_mpsim::CommEventKind;
    // `run_traced` collects each rank's full log at the end of the run —
    // no destructive mid-run `take_trace` needed inside the closure.
    let (_, _, traces) = Universe::new(3).run_traced(|comm| {
        let me = comm.rank();
        comm.send((me + 1) % 3, 42, vec![1.0, 2.0]);
        comm.recv((me + 2) % 3, 42).unwrap();
    });
    for (rank, trace) in traces.iter().enumerate() {
        let kinds: Vec<_> = trace.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommEventKind::Send { dst: (rank + 1) % 3, tag: 42, words: 2 },
                CommEventKind::Recv { src: (rank + 2) % 3, tag: 42, words: 2 },
            ]
        );
        // Timestamps are non-decreasing within a rank.
        assert!(trace.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }
}

#[test]
fn tracing_disabled_reports_tracing_off_inside_the_closure() {
    // Rank code can branch on `Comm::tracing` (e.g. to skip building
    // expensive annotations); a plain `run` must report it off.
    let (results, _) = Universe::new(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 0, vec![1.0]);
        } else {
            comm.recv(0, 0).unwrap();
        }
        comm.tracing()
    });
    assert!(results.iter().all(|&tracing| !tracing));
}

#[test]
fn run_traced_collects_the_complete_log_after_the_closure_returns() {
    // The log is collected only once the closure is done: both exchanges
    // are present, in order, with nothing lost or double counted.
    let (_, _, traces) = Universe::new(2).run_traced(|comm| {
        let other = 1 - comm.rank();
        comm.send(other, 0, vec![1.0]);
        comm.recv(other, 0).unwrap();
        comm.send(other, 1, vec![2.0, 3.0]);
        comm.recv(other, 1).unwrap();
    });
    for trace in &traces {
        assert_eq!(trace.len(), 4, "two sends and two recvs per rank");
        assert_eq!(trace.iter().map(|e| e.words()).sum::<u64>(), 6);
    }
}
