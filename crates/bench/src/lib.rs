#![warn(missing_docs)]
//! Shared workload builders for the Criterion benches.
//!
//! One bench target exists per experiment in `DESIGN.md`'s index:
//!
//! | bench | experiment |
//! |---|---|
//! | `sequential` | E7: Algorithm 3 vs Algorithm 4 |
//! | `comm_optimality` | E1/E2: Algorithm 5 modes vs the lower bound |
//! | `baselines` | E3: Algorithm 5 vs 1-D / 3-D baselines |
//! | `load_balance` | E4: per-rank ternary multiplication balance |
//! | `schedule_steps` | E6: schedule construction and step counts |
//! | `hopm` | E8: sequential vs parallel HOPM |
//! | `wallclock` | E9: strong scaling of the thread backend |
//! | `substrates` | Steiner construction, matching, mpsim collectives |
//! | `kernels` | E10: flat-slab / blocked / parallel / batched local kernels |

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_core::SymTensor3;
use symtensor_parallel::TetraPartition;
use symtensor_steiner::spherical;

/// Deterministic random tensor for benches.
pub fn bench_tensor(n: usize, seed: u64) -> SymTensor3 {
    let mut rng = StdRng::seed_from_u64(seed);
    random_symmetric(n, &mut rng)
}

/// Deterministic input vector.
pub fn bench_vector(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as f64) * 0.013).sin() + 0.2).collect()
}

/// Partition for a spherical system with exact shard divisibility:
/// `n = (q²+1)·q(q+1)·scale`.
pub fn bench_partition(q: u64, scale: usize) -> TetraPartition {
    let qq = q as usize;
    let n = (qq * qq + 1) * qq * (qq + 1) * scale;
    TetraPartition::new(spherical(q), n).expect("bench partition")
}
