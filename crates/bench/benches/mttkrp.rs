//! MTTKRP benches: fused vs column-wise sequential kernels, and the
//! distributed MTTKRP whose bandwidth is exactly `r ×` one STTSV while the
//! round count stays that of a single STTSV (the §8 generalization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use symtensor_bench::{bench_partition, bench_tensor};
use symtensor_core::mttkrp::{mttkrp_sym, mttkrp_sym_fused};
use symtensor_core::ops::Matrix;
use symtensor_parallel::mttkrp::parallel_mttkrp;
use symtensor_parallel::Mode;

fn factor(n: usize, r: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, r);
    for row in 0..n {
        for col in 0..r {
            m.set(row, col, rng.gen::<f64>() - 0.5);
        }
    }
    m
}

fn bench_sequential_mttkrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp_sequential");
    group.sample_size(10);
    let n = 120;
    let tensor = bench_tensor(n, 7);
    for r in [2usize, 8] {
        let x = factor(n, r, 8);
        group.bench_with_input(BenchmarkId::new("columnwise", r), &r, |bench, _| {
            bench.iter(|| mttkrp_sym(black_box(&tensor), &x))
        });
        group.bench_with_input(BenchmarkId::new("fused", r), &r, |bench, _| {
            bench.iter(|| mttkrp_sym_fused(black_box(&tensor), &x))
        });
    }
    group.finish();
}

fn bench_parallel_mttkrp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mttkrp_parallel");
    group.sample_size(10);
    let part = bench_partition(2, 2);
    let n = part.dim();
    let tensor = bench_tensor(n, 9);
    for r in [2usize, 4] {
        let x = factor(n, r, 10);
        let run = parallel_mttkrp(&tensor, &part, &x, Mode::Scheduled);
        eprintln!(
            "[mttkrp] n={n} r={r}: {} words/rank in {} rounds (1 STTSV's round count)",
            run.report.bandwidth_cost(),
            run.report.max_rounds()
        );
        group.bench_with_input(BenchmarkId::new("scheduled_p10", r), &r, |bench, _| {
            bench.iter(|| parallel_mttkrp(black_box(&tensor), &part, &x, Mode::Scheduled))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_mttkrp, bench_parallel_mttkrp);
criterion_main!(benches);
