//! Substrate microbenchmarks: spherical Steiner system construction
//! (finite-geometry orbit computation), partition construction (including
//! the diagonal-block matchings), Hopcroft–Karp, edge coloring and the
//! mpsim all-to-all collective.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_matching::{edge_color_regular, hopcroft_karp, BipartiteGraph};
use symtensor_mpsim::Universe;
use symtensor_parallel::TetraPartition;
use symtensor_steiner::spherical;

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_construction");
    group.sample_size(10);
    for q in [2u64, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("spherical", q), &q, |bench, &q| {
            bench.iter(|| spherical(black_box(q)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("partition_construction");
    group.sample_size(10);
    for q in [2u64, 3, 4] {
        let system = spherical(q);
        let qq = q as usize;
        let n = (qq * qq + 1) * qq * (qq + 1);
        group.bench_with_input(BenchmarkId::new("tetra_partition", q), &q, |bench, _| {
            bench.iter(|| TetraPartition::new(black_box(system.clone()), n).unwrap())
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(20);
    // Dense-ish random bipartite graph.
    let n = 200;
    let mut g = BipartiteGraph::new(n, n);
    let mut state = 7u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for x in 0..n {
        for _ in 0..8 {
            g.add_edge(x, next() % n);
        }
    }
    group.bench_function("hopcroft_karp_200x200", |bench| {
        bench.iter(|| hopcroft_karp(black_box(&g)))
    });

    // Edge coloring of a d-regular union of permutations.
    let d = 8;
    let mut edges = Vec::new();
    for shift in 0..d {
        for x in 0..n {
            edges.push((x, (x * 3 + shift * 17 + x / 7) % n));
        }
    }
    // Make it regular: union of shifted permutations instead.
    edges.clear();
    for shift in 0..d {
        for x in 0..n {
            edges.push((x, (x + shift * 13) % n));
        }
    }
    group.bench_function("edge_color_8_regular_200", |bench| {
        bench.iter(|| edge_color_regular(n, black_box(&edges)))
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpsim_collectives");
    group.sample_size(10);
    for p in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("all_to_all_v", p), &p, |bench, &p| {
            bench.iter(|| {
                Universe::new(p).run(|comm| {
                    let bufs: Vec<Vec<f64>> = (0..p).map(|d| vec![d as f64; 64]).collect();
                    comm.all_to_all_v(black_box(bufs)).unwrap()
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("all_gather", p), &p, |bench, &p| {
            bench.iter(|| {
                Universe::new(p)
                    .run(|comm| comm.all_gather(black_box(vec![comm.rank() as f64; 64])).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steiner, bench_matching, bench_collectives);
criterion_main!(benches);
