//! E4 — computational load balance: time to run every rank's local kernels
//! and the measured max/ideal ternary-multiplication ratio (§7.1: the
//! imbalance sits only in lower-order terms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::{bench_partition, bench_tensor, bench_vector};
use symtensor_parallel::blocks::OwnedBlocks;
use symtensor_parallel::bounds;

fn bench_local_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_kernels");
    group.sample_size(10);
    for (q, scale) in [(2u64, 2usize), (3, 1)] {
        let part = bench_partition(q, scale);
        let n = part.dim();
        let b = part.block_size();
        let tensor = bench_tensor(n, 4);
        let x = bench_vector(n);
        // Report the balance ratio once.
        let max: u64 = (0..part.num_procs()).map(|p| part.ternary_mults(p)).max().unwrap();
        eprintln!(
            "[load_balance] q={q} n={n}: max rank work {max}, ideal {:.0}, ratio {:.4}",
            bounds::comp_cost_leading(n, part.num_procs()),
            max as f64 / bounds::comp_cost_leading(n, part.num_procs())
        );
        // Bench the heaviest rank's kernel execution (extraction excluded).
        let heaviest = (0..part.num_procs()).max_by_key(|&p| part.ternary_mults(p)).unwrap();
        let owned = OwnedBlocks::extract(&tensor, &part, heaviest);
        let rp = part.r_set(heaviest).to_vec();
        let x_full: Vec<Vec<f64>> = rp.iter().map(|&i| x[part.block_range(i)].to_vec()).collect();
        group.bench_with_input(
            BenchmarkId::new("heaviest_rank", format!("q{q}_n{n}")),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let mut y_acc: Vec<Vec<f64>> = vec![vec![0.0; b]; rp.len()];
                    let pos = |i: usize| rp.binary_search(&i).unwrap();
                    owned.compute(black_box(&x_full), &mut y_acc, pos)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_local_kernels);
criterion_main!(benches);
