//! E3 — Algorithm 5 vs the 1-D row-partitioned and 3-D cubic baselines at
//! comparable processor counts, reporting both wall-clock (Criterion) and
//! the communicated words (stderr).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::{bench_partition, bench_tensor, bench_vector};
use symtensor_parallel::baselines::{sttsv_1d, sttsv_3d};
use symtensor_parallel::{parallel_sttsv, Mode};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    // q = 3 (P = 30) vs g = 3 (P = 27) vs 1-D (P = 30).
    let part = bench_partition(3, 2);
    let n = part.dim();
    let tensor = bench_tensor(n, 3);
    let x = bench_vector(n);

    let alg5 = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let cubic = sttsv_3d(&tensor, &x, 3);
    let rows = sttsv_1d(&tensor, &x, 30);
    eprintln!(
        "[baselines] n={n}: alg5 {} words (P=30), 3d-cubic {} (P=27), 1d {} (P=30)",
        alg5.report.bandwidth_cost(),
        cubic.report.bandwidth_cost(),
        rows.report.bandwidth_cost()
    );

    group.bench_with_input(BenchmarkId::new("alg5_scheduled", n), &n, |bench, _| {
        bench.iter(|| parallel_sttsv(black_box(&tensor), &part, &x, Mode::Scheduled))
    });
    group.bench_with_input(BenchmarkId::new("cubic_3d_g3", n), &n, |bench, _| {
        bench.iter(|| sttsv_3d(black_box(&tensor), &x, 3))
    });
    group.bench_with_input(BenchmarkId::new("rows_1d_p30", n), &n, |bench, _| {
        bench.iter(|| sttsv_1d(black_box(&tensor), &x, 30))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
