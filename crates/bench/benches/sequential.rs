//! E7 — sequential STTSV: Algorithm 3 (naive, `n³` ternary mults) vs
//! Algorithm 4 (symmetric, `n²(n+1)/2`). The paper's claim: the symmetric
//! kernel does ≈ half the work; wall-clock should track that.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::{bench_tensor, bench_vector};
use symtensor_core::seq::{sttsv_naive, sttsv_sym};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_sttsv");
    group.sample_size(10);
    for n in [40usize, 80, 160] {
        let tensor = bench_tensor(n, 1);
        let x = bench_vector(n);
        group.bench_with_input(BenchmarkId::new("alg3_naive", n), &n, |bench, _| {
            bench.iter(|| sttsv_naive(black_box(&tensor), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("alg4_symmetric", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym(black_box(&tensor), black_box(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
