//! E8 — end-to-end higher-order power method (Algorithm 1): sequential vs
//! distributed with the communication-optimal kernel inside.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use symtensor_core::generate::random_odeco;
use symtensor_core::hopm::{hopm, HopmOptions};
use symtensor_parallel::hopm::parallel_hopm;
use symtensor_parallel::{Mode, TetraPartition};
use symtensor_steiner::spherical;

fn bench_hopm(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopm");
    group.sample_size(10);
    let n = 120;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let odeco = random_odeco(n, 4, &mut rng);
    let mut x0 = odeco.vectors[0].clone();
    x0[1] += 0.1;
    let opts = HopmOptions { tol: 1e-10, max_iters: 100 };

    // Correctness gate before timing.
    let seq = hopm(&odeco.tensor, &x0, opts);
    let (par, _) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::Scheduled);
    assert!((seq.lambda - par.lambda).abs() < 1e-7);
    eprintln!(
        "[hopm] n={n}: lambda {:.10} in {} (seq) / {} (par) iterations",
        par.lambda, seq.iters, par.iters
    );

    group.bench_with_input(BenchmarkId::new("sequential", n), &n, |bench, _| {
        bench.iter(|| hopm(black_box(&odeco.tensor), &x0, opts))
    });
    group.bench_with_input(BenchmarkId::new("parallel_p10", n), &n, |bench, _| {
        bench.iter(|| parallel_hopm(black_box(&odeco.tensor), &part, &x0, opts, Mode::Scheduled))
    });
    group.finish();
}

criterion_group!(benches, bench_hopm);
criterion_main!(benches);
