//! E1/E2 — Algorithm 5 in its three communication modes. Criterion measures
//! wall-clock on the thread backend; the bench also prints the measured
//! word counts next to the Theorem 5.2 lower bound once per configuration
//! (the primary reproduction artifact — word counts are exact and
//! machine-independent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::{bench_partition, bench_tensor, bench_vector};
use symtensor_parallel::{bounds, parallel_sttsv, Mode};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg5_modes");
    group.sample_size(10);
    for q in [2u64, 3] {
        let part = bench_partition(q, 2);
        let n = part.dim();
        let tensor = bench_tensor(n, 2);
        let x = bench_vector(n);
        // Print the cost table once (Criterion output is wall-clock only).
        for (label, mode) in [
            ("scheduled", Mode::Scheduled),
            ("alltoall_padded", Mode::AllToAllPadded),
            ("alltoall_sparse", Mode::AllToAllSparse),
        ] {
            let run = parallel_sttsv(&tensor, &part, &x, mode);
            let lb = bounds::lower_bound_words(n, part.num_procs());
            eprintln!(
                "[comm_optimality] q={q} n={n} {label}: {} words/rank, lower bound {lb:.1}, ratio {:.3}",
                run.report.bandwidth_cost(),
                run.report.bandwidth_cost() as f64 / lb
            );
            group.bench_with_input(
                BenchmarkId::new(label, format!("q{q}_n{n}")),
                &mode,
                |bench, &mode| bench.iter(|| parallel_sttsv(black_box(&tensor), &part, &x, mode)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
