//! E10 — sequential I/O simulation throughput and the blocked-vs-row-major
//! vector traffic comparison across cache sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_cachesim::{sttsv_io_blocked, sttsv_io_rowmajor, LruCache};

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_cache");
    group.sample_size(20);
    group.bench_function("access_1m_cyclic", |bench| {
        bench.iter(|| {
            let mut cache = LruCache::new(4096, 8);
            for a in 0..1_000_000u64 {
                cache.access(black_box(a % 8192));
            }
            cache.stats()
        })
    });
    group.finish();
}

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("sttsv_io_trace");
    group.sample_size(10);
    let n = 96;
    for cache_words in [128usize, 1024] {
        // Report measured misses once.
        let row = sttsv_io_rowmajor(n, cache_words, 1);
        let blk = sttsv_io_blocked(n, 8, cache_words, 1);
        eprintln!(
            "[seqio] n={n} M={cache_words}: vector misses row-major {} vs blocked {}",
            row.vector_misses, blk.vector_misses
        );
        group.bench_with_input(
            BenchmarkId::new("rowmajor", cache_words),
            &cache_words,
            |bench, &m| bench.iter(|| sttsv_io_rowmajor(black_box(n), m, 1)),
        );
        group.bench_with_input(
            BenchmarkId::new("blocked_b8", cache_words),
            &cache_words,
            |bench, &m| bench.iter(|| sttsv_io_blocked(black_box(n), 8, m, 1)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lru, bench_traces);
criterion_main!(benches);
