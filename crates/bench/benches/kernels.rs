//! E10 — local kernel throughput: the flat-slab cursor kernel vs the seed
//! per-point kernel, the blocked variant, the work-stealing parallel panel
//! kernel, and the batched multi-vector path.
//!
//! Claims under test: the flat-slab walk beats the per-point
//! `tet(i)+tri(j)+k` addressing (≥2× at n = 512); `sttsv_sym_multi`
//! amortizes the slab traversal across a batch (one pass over the tensor
//! instead of `B`); `sttsv_sym_par` scales with threads on multi-core
//! hosts while staying bit-identical across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use symtensor_bench::{bench_tensor, bench_vector};
use symtensor_core::seq::{sttsv_sym, sttsv_sym_blocked, sttsv_sym_multi, sttsv_sym_ref};
use symtensor_core::{sttsv_sym_par, sttsv_sym_par_multi, Pool};

/// Ternary-multiplication count of one STTSV — the paper's work measure,
/// used as Criterion throughput so reports read in elements/sec.
fn ternary(n: usize) -> u64 {
    let n = n as u64;
    n * n * (n + 1) / 2
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_throughput");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let tensor = bench_tensor(n, 10);
        let x = bench_vector(n);
        group.throughput(Throughput::Elements(ternary(n)));
        group.bench_with_input(BenchmarkId::new("ref_per_point", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_ref(black_box(&tensor), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("flat_slab", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym(black_box(&tensor), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("blocked_b64", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_blocked(black_box(&tensor), black_box(&x), 64))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_parallel");
    group.sample_size(10);
    for n in [256usize, 512] {
        let tensor = bench_tensor(n, 11);
        let x = bench_vector(n);
        group.throughput(Throughput::Elements(ternary(n)));
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("par_t{threads}"), n),
                &n,
                |bench, _| bench.iter(|| sttsv_sym_par(black_box(&tensor), black_box(&x), &pool)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_batched");
    group.sample_size(10);
    for n in [128usize, 256] {
        let tensor = bench_tensor(n, 12);
        let batch = 8usize;
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|i| ((i * 3 + v + 1) as f64 * 0.017).sin()).collect())
            .collect();
        group.throughput(Throughput::Elements(batch as u64 * ternary(n)));
        group.bench_with_input(BenchmarkId::new("independent_x8", n), &n, |bench, _| {
            bench.iter(|| {
                xs.iter().map(|x| sttsv_sym(black_box(&tensor), black_box(x))).collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("multi_x8", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_multi(black_box(&tensor), black_box(&xs)))
        });
        let pool = Pool::new(4);
        group.bench_with_input(BenchmarkId::new("par_multi_x8_t4", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_par_multi(black_box(&tensor), black_box(&xs), &pool))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
