//! E10 — local kernel throughput: the flat-slab cursor kernel vs the seed
//! per-point kernel, the blocked variant, the work-stealing parallel panel
//! kernel, the batched multi-vector path, and the compiled-plan packed
//! arena vs the per-block legacy walk.
//!
//! Claims under test: the flat-slab walk beats the per-point
//! `tet(i)+tri(j)+k` addressing (≥2× at n = 512); `sttsv_sym_multi`
//! amortizes the slab traversal across a batch (one pass over the tensor
//! instead of `B`); `sttsv_sym_par` scales with threads on multi-core
//! hosts while staying bit-identical across thread counts; the compiled
//! `RankPlan` arena kernel is no slower than `OwnedBlocks::compute` while
//! running allocation-free.
//!
//! Besides the Criterion report, this bench self-times a representative
//! subset and writes `BENCH_kernels.json` at the repository root
//! (`{kernel, n, q, ns_per_iter, flops_per_sec}` per case; `q = null` marks
//! sequential kernels with no partition) so CI can archive kernel
//! throughput as an artifact. The offline Criterion shim has no JSON
//! machinery, so the rows come from a best-of-three wall-clock loop here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;
use symtensor_bench::{bench_partition, bench_tensor, bench_vector};
use symtensor_core::seq::{sttsv_sym, sttsv_sym_blocked, sttsv_sym_multi, sttsv_sym_ref};
use symtensor_core::{sttsv_sym_par, sttsv_sym_par_multi, Pool};
use symtensor_obs::json::Value;
use symtensor_parallel::blocks::OwnedBlocks;
use symtensor_parallel::{PlanWorkspace, RankPlan};

/// Ternary-multiplication count of one STTSV — the paper's work measure,
/// used as Criterion throughput so reports read in elements/sec.
fn ternary(n: usize) -> u64 {
    let n = n as u64;
    n * n * (n + 1) / 2
}

/// Best-of-three self-timed measurement: one warm-up call, then three
/// batches of five invocations; returns `(ns_per_iter, last_return)`.
fn measure<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut work = f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        const ITERS: u32 = 5;
        let t0 = Instant::now();
        for _ in 0..ITERS {
            work = f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / f64::from(ITERS));
    }
    (best, work)
}

/// Appends one `BENCH_kernels.json` row. Effective flops treat each
/// ternary multiplication as 2 multiplies + 1 fused accumulate.
fn record(
    rows: &mut Vec<Value>,
    kernel: &str,
    n: usize,
    q: Option<u64>,
    ns: f64,
    ternary_mults: u64,
) {
    let flops_per_sec = 3.0 * ternary_mults as f64 / (ns * 1e-9);
    rows.push(
        Value::object()
            .with("kernel", kernel)
            .with("n", n)
            .with("q", q.map(Value::from).unwrap_or(Value::Null))
            .with("ns_per_iter", ns)
            .with("flops_per_sec", flops_per_sec),
    );
}

/// Compiled-plan packed arena vs the legacy per-block walk on rank 0's
/// owned blocks, post-gather (both paths see the same dense row blocks).
fn bench_plan(c: &mut Criterion, rows: &mut Vec<Value>) {
    let mut group = c.benchmark_group("kernel_plan");
    group.sample_size(10);
    for q in [2u64, 3] {
        let qq = q as usize;
        let n = (qq * qq + 1) * qq * (qq + 1);
        let part = bench_partition(q, 1);
        let tensor = bench_tensor(n, 13);
        let rank = 0;
        let rp = part.r_set(rank);
        let b = part.block_size();
        let owned = OwnedBlocks::extract(&tensor, &part, rank);
        let plan = RankPlan::build(&part, &owned, rank);
        let x_full: Vec<Vec<f64>> = (0..rp.len())
            .map(|t| (0..b).map(|i| (((i + t * 7) as f64) * 0.019).cos()).collect())
            .collect();
        let mut y = vec![vec![0.0; b]; rp.len()];
        let mut ws = PlanWorkspace::new();
        plan.ensure_capacity(&mut ws, 1);

        let mut legacy = || {
            for row in y.iter_mut() {
                row.fill(0.0);
            }
            owned.compute(black_box(&x_full), &mut y, |i| rp.binary_search(&i).unwrap())
        };
        let arena = |ws: &mut PlanWorkspace| {
            plan.load_full(ws, 0, black_box(&x_full));
            plan.compute(ws, 1, None)
        };
        // Comm-free analog of the overlapped exchange: the same plan driven
        // through the readiness machinery (owned-only prefix, then one
        // simulated peer arrival at a time) instead of one barrier compute.
        // Measures the dependency-tracking overhead the pipelining adds on
        // top of the arena walk — the overlap's win is hidden wait, so its
        // kernel cost must stay in the same band as `plan_arena`.
        let overlap = |ws: &mut PlanWorkspace| {
            plan.load_full(ws, 0, black_box(&x_full));
            let mut st = plan.overlap_state(1, false);
            plan.compute_overlapped(ws, &mut st, None);
            st.take_flushable();
            for pidx in 0..plan.peers().len() {
                plan.note_gather_arrival(&mut st, pidx);
                plan.compute_overlapped(ws, &mut st, None);
                st.take_flushable();
            }
            plan.finish_overlapped(ws, &mut st, None)
        };

        let ternary = legacy();
        group.throughput(Throughput::Elements(ternary));
        group.bench_with_input(BenchmarkId::new("owned_blocks", n), &n, |bench, _| {
            bench.iter(&mut legacy)
        });
        group.bench_with_input(BenchmarkId::new("plan_arena", n), &n, |bench, _| {
            bench.iter(|| arena(&mut ws))
        });
        group.bench_with_input(BenchmarkId::new("plan_overlap", n), &n, |bench, _| {
            bench.iter(|| overlap(&mut ws))
        });

        let (ns_legacy, t_legacy) = measure(&mut legacy);
        record(rows, "owned_blocks", n, Some(q), ns_legacy, t_legacy);
        let (ns_plan, t_plan) = measure(|| arena(&mut ws));
        assert_eq!(t_plan, t_legacy, "q={q}: plan and legacy ternary counts must agree");
        record(rows, "plan_arena", n, Some(q), ns_plan, t_plan);
        let (ns_overlap, t_overlap) = measure(|| overlap(&mut ws));
        assert_eq!(t_overlap, t_legacy, "q={q}: overlapped ternary count must agree");
        record(rows, "plan_overlap", n, Some(q), ns_overlap, t_overlap);
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut rows: Vec<Value> = Vec::new();
    let mut group = c.benchmark_group("kernel_throughput");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let tensor = bench_tensor(n, 10);
        let x = bench_vector(n);
        group.throughput(Throughput::Elements(ternary(n)));
        group.bench_with_input(BenchmarkId::new("ref_per_point", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_ref(black_box(&tensor), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("flat_slab", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym(black_box(&tensor), black_box(&x)))
        });
        group.bench_with_input(BenchmarkId::new("blocked_b64", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_blocked(black_box(&tensor), black_box(&x), 64))
        });
        // Self-timed rows for BENCH_kernels.json (smaller sizes only, to
        // keep the CI bench smoke fast; q = null marks "no partition").
        if n <= 256 {
            let (ns, t) =
                measure(|| sttsv_sym_ref(black_box(&tensor), black_box(&x)).1.ternary_mults);
            record(&mut rows, "ref_per_point", n, None, ns, t);
            let (ns, t) = measure(|| sttsv_sym(black_box(&tensor), black_box(&x)).1.ternary_mults);
            record(&mut rows, "flat_slab", n, None, ns, t);
            let (ns, t) = measure(|| {
                sttsv_sym_blocked(black_box(&tensor), black_box(&x), 64).1.ternary_mults
            });
            record(&mut rows, "blocked_b64", n, None, ns, t);
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_parallel");
    group.sample_size(10);
    for n in [256usize, 512] {
        let tensor = bench_tensor(n, 11);
        let x = bench_vector(n);
        group.throughput(Throughput::Elements(ternary(n)));
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("par_t{threads}"), n),
                &n,
                |bench, _| bench.iter(|| sttsv_sym_par(black_box(&tensor), black_box(&x), &pool)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("kernel_batched");
    group.sample_size(10);
    for n in [128usize, 256] {
        let tensor = bench_tensor(n, 12);
        let batch = 8usize;
        let xs: Vec<Vec<f64>> = (0..batch)
            .map(|v| (0..n).map(|i| ((i * 3 + v + 1) as f64 * 0.017).sin()).collect())
            .collect();
        group.throughput(Throughput::Elements(batch as u64 * ternary(n)));
        group.bench_with_input(BenchmarkId::new("independent_x8", n), &n, |bench, _| {
            bench.iter(|| {
                xs.iter().map(|x| sttsv_sym(black_box(&tensor), black_box(x))).collect::<Vec<_>>()
            })
        });
        group.bench_with_input(BenchmarkId::new("multi_x8", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_multi(black_box(&tensor), black_box(&xs)))
        });
        let pool = Pool::new(4);
        group.bench_with_input(BenchmarkId::new("par_multi_x8_t4", n), &n, |bench, _| {
            bench.iter(|| sttsv_sym_par_multi(black_box(&tensor), black_box(&xs), &pool))
        });
        if n <= 256 {
            let (ns, t) =
                measure(|| sttsv_sym_multi(black_box(&tensor), black_box(&xs)).1.ternary_mults);
            record(&mut rows, "multi_x8", n, None, ns, t);
        }
    }
    group.finish();

    bench_plan(c, &mut rows);

    let json = Value::object()
        .with("benchmark", "kernels")
        .with("flops_model", "3 flops per ternary multiplication (2 mul + 1 accumulate)")
        .with("results", Value::Array(rows));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(path, json.to_string_pretty() + "\n").expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
