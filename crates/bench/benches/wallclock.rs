//! E9 — strong scaling of the simulated machine: Algorithm 5 wall-clock at
//! fixed problem size across the processor counts the spherical family
//! provides (P = 10, 30, 68), plus the sequential kernel as the one-core
//! reference. Wall-clock here is shape-only (threads on one host), the
//! word counts are the rigorous quantity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::{bench_tensor, bench_vector};
use symtensor_core::seq::sttsv_sym;
use symtensor_parallel::{parallel_sttsv, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_scaling");
    group.sample_size(10);
    // n divisible by every m·λ₁ in the sweep: lcm(5·6, 10·12, 17·20) —
    // use n = 2040 = lcm(30,120,...)? 2040/120 = 17 ✓, 2040/30 = 68 ✓,
    // 2040/340 = 6 ✓. That tensor has 1.4G packed words — too big. Use
    // per-q sizes at a fixed nominal n ≈ 360 instead and report seconds
    // per (n³/2) model operation.
    let seq_n = 360;
    let tensor = bench_tensor(seq_n, 6);
    let x = bench_vector(seq_n);
    group.bench_with_input(BenchmarkId::new("sequential", seq_n), &seq_n, |bench, _| {
        bench.iter(|| sttsv_sym(black_box(&tensor), &x))
    });
    for q in [2u64, 3] {
        let part = TetraPartition::new(spherical(q), seq_n).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("alg5_p{}", part.num_procs()), seq_n),
            &seq_n,
            |bench, _| {
                bench.iter(|| parallel_sttsv(black_box(&tensor), &part, &x, Mode::Scheduled))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
