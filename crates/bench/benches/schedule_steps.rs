//! E6 — point-to-point schedule construction: build time and the measured
//! step count vs the closed form `q³/2 + 3q²/2 − 1` (Theorem 7.2; 12 steps
//! for the P = 14 system of Figure 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use symtensor_bench::bench_partition;
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{CommSchedule, TetraPartition};
use symtensor_steiner::sqs8;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    group.sample_size(10);
    for q in [2u64, 3, 4, 5] {
        let part = bench_partition(q, 1);
        let schedule = CommSchedule::build(&part);
        assert_eq!(schedule.num_rounds(), spherical_round_count(q as usize));
        eprintln!(
            "[schedule_steps] q={q} P={}: {} rounds (formula {}; all-to-all would use P-1 = {})",
            part.num_procs(),
            schedule.num_rounds(),
            spherical_round_count(q as usize),
            part.num_procs() - 1
        );
        group.bench_with_input(BenchmarkId::new("spherical", format!("q{q}")), &q, |bench, _| {
            bench.iter(|| CommSchedule::build(black_box(&part)))
        });
    }
    let part = TetraPartition::new(sqs8(), 56).unwrap();
    let schedule = CommSchedule::build(&part);
    assert_eq!(schedule.num_rounds(), 12);
    eprintln!("[schedule_steps] SQS(8) P=14: {} rounds (Figure 1: 12)", schedule.num_rounds());
    group.bench_function("sqs8", |bench| bench.iter(|| CommSchedule::build(black_box(&part))));
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
