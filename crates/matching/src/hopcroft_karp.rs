//! Maximum cardinality bipartite matching.
//!
//! [`hopcroft_karp`] is the `O(E·√V)` algorithm from Hopcroft & Karp (1973);
//! [`ford_fulkerson`] is the classical `O(V·E)` augmenting-path method
//! (unit-capacity Ford–Fulkerson, a.k.a. the Hungarian-style DFS). The paper
//! cites both as suitable subroutines; we keep both so property tests can
//! cross-check them.

use crate::{BipartiteGraph, Matching};
use std::collections::VecDeque;

const INF: u32 = u32::MAX;

/// Hopcroft–Karp maximum matching. Returns `match_x[x] = Some(y)`.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let nx = g.num_left();
    let ny = g.num_right();
    let mut match_x: Vec<Option<usize>> = vec![None; nx];
    let mut match_y: Vec<Option<usize>> = vec![None; ny];
    let mut dist = vec![INF; nx];
    let mut queue = VecDeque::new();

    loop {
        // BFS phase: layer the graph from free left vertices.
        queue.clear();
        for x in 0..nx {
            if match_x[x].is_none() {
                dist[x] = 0;
                queue.push_back(x);
            } else {
                dist[x] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(x) = queue.pop_front() {
            for &y in g.neighbors(x) {
                match match_y[y] {
                    None => found_augmenting = true,
                    Some(nx2) => {
                        if dist[nx2] == INF {
                            dist[nx2] = dist[x] + 1;
                            queue.push_back(nx2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find a maximal set of shortest augmenting paths.
        for x in 0..nx {
            if match_x[x].is_none() {
                dfs(g, x, &mut match_x, &mut match_y, &mut dist);
            }
        }
    }
    match_x
}

fn dfs(
    g: &BipartiteGraph,
    x: usize,
    match_x: &mut [Option<usize>],
    match_y: &mut [Option<usize>],
    dist: &mut [u32],
) -> bool {
    for &y in g.neighbors(x) {
        let advance = match match_y[y] {
            None => true,
            Some(x2) => dist[x2] == dist[x] + 1 && dfs(g, x2, match_x, match_y, dist),
        };
        if advance {
            match_x[x] = Some(y);
            match_y[y] = Some(x);
            return true;
        }
    }
    dist[x] = INF;
    false
}

/// Unit-capacity Ford–Fulkerson maximum matching (simple augmenting DFS).
/// Asymptotically slower than Hopcroft–Karp; kept as an independent
/// cross-check and because the paper cites it explicitly.
pub fn ford_fulkerson(g: &BipartiteGraph) -> Matching {
    let nx = g.num_left();
    let ny = g.num_right();
    let mut match_x: Vec<Option<usize>> = vec![None; nx];
    let mut match_y: Vec<Option<usize>> = vec![None; ny];
    for x in 0..nx {
        let mut visited = vec![false; ny];
        try_augment(g, x, &mut visited, &mut match_x, &mut match_y);
    }
    match_x
}

fn try_augment(
    g: &BipartiteGraph,
    x: usize,
    visited: &mut [bool],
    match_x: &mut [Option<usize>],
    match_y: &mut [Option<usize>],
) -> bool {
    for &y in g.neighbors(x) {
        if visited[y] {
            continue;
        }
        visited[y] = true;
        let free = match match_y[y] {
            None => true,
            Some(x2) => try_augment(g, x2, visited, match_x, match_y),
        };
        if free {
            match_x[x] = Some(y);
            match_y[y] = Some(x);
            return true;
        }
    }
    false
}

/// Size of a matching (number of matched left vertices).
pub fn matching_size(m: &Matching) -> usize {
    m.iter().filter(|e| e.is_some()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_matching;

    #[test]
    fn simple_perfect_matching() {
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(2, 1);
        g.add_edge(2, 2);
        let m = hopcroft_karp(&g);
        assert!(is_valid_matching(&g, &m));
        assert_eq!(matching_size(&m), 3);
    }

    #[test]
    fn matches_ford_fulkerson_on_randomish_graphs() {
        // Deterministic pseudo-random graphs via a simple LCG.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..50 {
            let nx = 1 + next() % 12;
            let ny = 1 + next() % 12;
            let mut g = BipartiteGraph::new(nx, ny);
            let edges = next() % (nx * ny + 1);
            for _ in 0..edges {
                g.add_edge(next() % nx, next() % ny);
            }
            let hk = hopcroft_karp(&g);
            let ff = ford_fulkerson(&g);
            assert!(is_valid_matching(&g, &hk), "trial {trial}: HK invalid");
            assert!(is_valid_matching(&g, &ff), "trial {trial}: FF invalid");
            assert_eq!(matching_size(&hk), matching_size(&ff), "trial {trial}: sizes differ");
        }
    }

    #[test]
    fn unmatchable_vertices_stay_unmatched() {
        let mut g = BipartiteGraph::new(3, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(2, 0);
        let m = hopcroft_karp(&g);
        assert_eq!(matching_size(&m), 1);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(4, 4);
        assert_eq!(matching_size(&hopcroft_karp(&g)), 0);
        let g0 = BipartiteGraph::new(0, 0);
        assert_eq!(hopcroft_karp(&g0).len(), 0);
    }

    #[test]
    fn konig_worst_case_chain() {
        // A chain structure that forces augmenting path flips.
        // x_i -- y_i and x_i -- y_{i-1}: perfect matching exists.
        let n = 64;
        let mut g = BipartiteGraph::new(n, n);
        for i in 0..n {
            g.add_edge(i, i);
            if i > 0 {
                g.add_edge(i, i - 1);
            }
        }
        let m = hopcroft_karp(&g);
        assert_eq!(matching_size(&m), n);
    }
}
