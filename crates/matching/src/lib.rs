#![warn(missing_docs)]
//! Bipartite matching machinery for tetrahedral block partitioning.
//!
//! The paper needs three matching-theoretic tools:
//!
//! * a **maximum cardinality matching** algorithm (Hopcroft–Karp here, with a
//!   simple augmenting-path Ford–Fulkerson as a cross-check), cited in
//!   Sections 6.1.3 and 7.2.1;
//! * **`d` disjoint matchings** each saturating the left side (Corollary 6.7,
//!   obtained from Hall's theorem on a vertex-replicated graph) — used to
//!   assign non-central diagonal tensor blocks to processors;
//! * **edge coloring of a `d`-regular bipartite multigraph** into `d` perfect
//!   matchings (Lemma 7.1) — used to schedule point-to-point communication
//!   rounds (Theorem 7.2 / Figure 1).

pub mod color;
pub mod hopcroft_karp;

pub use color::edge_color_regular;
pub use hopcroft_karp::{ford_fulkerson, hopcroft_karp};

/// A bipartite graph with left vertices `0..nx`, right vertices `0..ny` and
/// adjacency lists from the left side.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    nx: usize,
    ny: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn new(nx: usize, ny: usize) -> Self {
        BipartiteGraph { nx, ny, adj: vec![Vec::new(); nx] }
    }

    /// Adds an edge from left vertex `x` to right vertex `y`.
    pub fn add_edge(&mut self, x: usize, y: usize) {
        assert!(x < self.nx && y < self.ny, "edge ({x},{y}) out of range");
        self.adj[x].push(y);
    }

    /// Number of left vertices.
    pub fn num_left(&self) -> usize {
        self.nx
    }

    /// Number of right vertices.
    pub fn num_right(&self) -> usize {
        self.ny
    }

    /// Neighbors of left vertex `x`.
    pub fn neighbors(&self, x: usize) -> &[usize] {
        &self.adj[x]
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

/// A matching stored as `match_x[x] = Some(y)`; a valid matching uses each
/// `y` at most once.
pub type Matching = Vec<Option<usize>>;

/// Checks that `m` is a valid matching in `g` (edges exist, right vertices
/// distinct).
pub fn is_valid_matching(g: &BipartiteGraph, m: &Matching) -> bool {
    if m.len() != g.num_left() {
        return false;
    }
    let mut used = vec![false; g.num_right()];
    for (x, my) in m.iter().enumerate() {
        if let Some(y) = *my {
            if y >= g.num_right() || !g.neighbors(x).contains(&y) || used[y] {
                return false;
            }
            used[y] = true;
        }
    }
    true
}

/// Finds `d` pairwise-disjoint matchings, each saturating every left vertex,
/// if they exist (Corollary 6.7 of the paper).
///
/// Implementation: replicate each left vertex `d` times, run Hopcroft–Karp,
/// and demand a matching that saturates every replica; replica `i` of `x`
/// contributes `x`'s edge in matching `i`. Returns `None` when no such family
/// exists (i.e., the replicated graph has no left-saturating matching).
pub fn disjoint_left_saturating_matchings(g: &BipartiteGraph, d: usize) -> Option<Vec<Matching>> {
    let nx = g.num_left();
    let mut rep = BipartiteGraph::new(nx * d, g.num_right());
    for x in 0..nx {
        for copy in 0..d {
            for &y in g.neighbors(x) {
                rep.add_edge(x * d + copy, y);
            }
        }
    }
    let m = hopcroft_karp(&rep);
    if m.iter().any(Option::is_none) {
        return None;
    }
    let mut out = vec![vec![None; nx]; d];
    for x in 0..nx {
        for copy in 0..d {
            out[copy][x] = m[x * d + copy];
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(n, n);
        for x in 0..n {
            for y in 0..n {
                g.add_edge(x, y);
            }
        }
        g
    }

    #[test]
    fn disjoint_matchings_in_complete_graph() {
        // The matchings are Y-disjoint (each right vertex assigned at most
        // once overall), so we need |Y| ≥ d·|X|: take K_{3,12}, d = 4.
        let mut g = BipartiteGraph::new(3, 12);
        for x in 0..3 {
            for y in 0..12 {
                g.add_edge(x, y);
            }
        }
        let ms = disjoint_left_saturating_matchings(&g, 4).unwrap();
        assert_eq!(ms.len(), 4);
        let mut seen_y = std::collections::HashSet::new();
        for m in &ms {
            assert!(is_valid_matching(&g, m));
            for y in m.iter() {
                assert!(seen_y.insert(y.unwrap()), "right vertex reused across matchings");
            }
        }
    }

    #[test]
    fn complete_square_graph_cannot_support_y_disjoint_families() {
        // K_{4,4} has only 4 right vertices; 4 Y-disjoint X-saturating
        // matchings would need 16, so the family does not exist (while an
        // edge coloring into 4 matchings does — see `color` tests).
        let g = complete(4);
        assert!(disjoint_left_saturating_matchings(&g, 4).is_none());
        assert!(disjoint_left_saturating_matchings(&g, 1).is_some());
    }

    #[test]
    fn disjoint_matchings_infeasible() {
        // A single right vertex cannot support 2 disjoint matchings of a
        // 1-left-vertex graph.
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0);
        assert!(disjoint_left_saturating_matchings(&g, 2).is_none());
        assert!(disjoint_left_saturating_matchings(&g, 1).is_some());
    }

    #[test]
    fn disjoint_matchings_use_distinct_right_vertices_per_left() {
        let mut g = BipartiteGraph::new(3, 9);
        for x in 0..3 {
            for y in 0..9 {
                g.add_edge(x, y);
            }
        }
        let ms = disjoint_left_saturating_matchings(&g, 3).unwrap();
        for x in 0..3 {
            let ys: std::collections::HashSet<_> = ms.iter().map(|m| m[x].unwrap()).collect();
            assert_eq!(ys.len(), 3, "left vertex {x} must get 3 distinct partners");
        }
    }

    #[test]
    fn valid_matching_checker() {
        let g = complete(2);
        assert!(is_valid_matching(&g, &vec![Some(0), Some(1)]));
        assert!(is_valid_matching(&g, &vec![None, Some(1)]));
        // Duplicate right vertex.
        assert!(!is_valid_matching(&g, &vec![Some(1), Some(1)]));
        // Nonexistent edge.
        let mut h = BipartiteGraph::new(2, 2);
        h.add_edge(0, 0);
        assert!(!is_valid_matching(&h, &vec![Some(1), None]));
    }
}
