//! Edge coloring of regular bipartite multigraphs.
//!
//! Lemma 7.1 of the paper: a `d`-regular bipartite (multi)graph decomposes
//! into `d` disjoint perfect matchings. Theorem 7.2 turns each matching into
//! one communication step in which every processor sends and receives exactly
//! one message. We realize the decomposition constructively by extracting a
//! perfect matching with Hopcroft–Karp and peeling it off; the remainder is
//! `(d−1)`-regular, so König's theorem guarantees the recursion succeeds.

use crate::{hopcroft_karp, BipartiteGraph};

/// Partitions the edges of a `d`-regular bipartite multigraph into `d`
/// perfect matchings.
///
/// `edges` are `(x, y)` pairs with `x ∈ 0..n` (left) and `y ∈ 0..n` (right);
/// parallel edges are allowed. Returns `d` rounds, each a list of **indices
/// into `edges`** forming a perfect matching.
///
/// # Panics
/// Panics if the multigraph is not `d`-regular on both sides for some `d`
/// (`d` is inferred as `edges.len() / n`).
pub fn edge_color_regular(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    if n == 0 {
        assert!(edges.is_empty());
        return Vec::new();
    }
    assert!(edges.len() % n == 0, "edge count {} not a multiple of n = {n}", edges.len());
    let d = edges.len() / n;
    let mut out_deg = vec![0usize; n];
    let mut in_deg = vec![0usize; n];
    for &(x, y) in edges {
        assert!(x < n && y < n, "edge ({x},{y}) out of range");
        out_deg[x] += 1;
        in_deg[y] += 1;
    }
    assert!(
        out_deg.iter().all(|&deg| deg == d) && in_deg.iter().all(|&deg| deg == d),
        "multigraph is not {d}-regular"
    );

    // Remaining edge indices grouped by left vertex.
    let mut remaining: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, &(x, _)) in edges.iter().enumerate() {
        remaining[x].push(ei);
    }

    let mut rounds = Vec::with_capacity(d);
    for round in 0..d {
        // Build the simple graph of remaining edges (dedup parallel edges,
        // remembering one representative edge index per (x, y)).
        let mut g = BipartiteGraph::new(n, n);
        let mut rep: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (y, edge index)
        for (x, row) in remaining.iter().enumerate() {
            let mut seen = vec![false; n];
            for &ei in row {
                let y = edges[ei].1;
                if !seen[y] {
                    seen[y] = true;
                    g.add_edge(x, y);
                    rep[x].push((y, ei));
                }
            }
        }
        let m = hopcroft_karp(&g);
        assert!(
            m.iter().all(Option::is_some),
            "no perfect matching at round {round}: multigraph was not regular"
        );
        let mut this_round = Vec::with_capacity(n);
        for x in 0..n {
            let y = m[x].unwrap();
            let &(_, ei) = rep[x].iter().find(|&&(yy, _)| yy == y).unwrap();
            this_round.push(ei);
            let pos = remaining[x].iter().position(|&e| e == ei).unwrap();
            remaining[x].swap_remove(pos);
        }
        rounds.push(this_round);
    }
    debug_assert!(remaining.iter().all(Vec::is_empty));
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_coloring(n: usize, edges: &[(usize, usize)]) {
        let rounds = edge_color_regular(n, edges);
        let d = edges.len().checked_div(n).unwrap_or(0);
        assert_eq!(rounds.len(), d);
        let mut used = HashSet::new();
        for round in &rounds {
            assert_eq!(round.len(), n);
            let mut xs = HashSet::new();
            let mut ys = HashSet::new();
            for &ei in round {
                assert!(used.insert(ei), "edge {ei} colored twice");
                let (x, y) = edges[ei];
                assert!(xs.insert(x), "left vertex repeated in a round");
                assert!(ys.insert(y), "right vertex repeated in a round");
            }
        }
        assert_eq!(used.len(), edges.len());
    }

    #[test]
    fn complete_graph_coloring() {
        // K_{n,n} is n-regular.
        let n = 6;
        let edges: Vec<(usize, usize)> = (0..n).flat_map(|x| (0..n).map(move |y| (x, y))).collect();
        check_coloring(n, &edges);
    }

    #[test]
    fn multigraph_with_parallel_edges() {
        // 2 parallel copies of a perfect matching plus a cycle: 3-regular.
        let n = 4;
        let mut edges = Vec::new();
        for x in 0..n {
            edges.push((x, x));
            edges.push((x, x));
            edges.push((x, (x + 1) % n));
        }
        check_coloring(n, &edges);
    }

    #[test]
    fn cycle_cover_structure() {
        // A single directed cycle is 1-regular: one round containing it all.
        let n = 5;
        let edges: Vec<(usize, usize)> = (0..n).map(|x| (x, (x + 1) % n)).collect();
        let rounds = edge_color_regular(n, &edges);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].len(), n);
    }

    #[test]
    fn empty_graph() {
        assert!(edge_color_regular(0, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not")]
    fn irregular_graph_panics() {
        // Vertex 0 has out-degree 2, vertex 1 has 0.
        edge_color_regular(2, &[(0, 0), (0, 1)]);
    }

    #[test]
    fn random_regular_multigraphs() {
        // Build d-regular bipartite multigraphs as unions of d random
        // permutations; coloring must always succeed.
        let mut state = 999u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..20 {
            let n = 2 + next() % 10;
            let d = 1 + next() % 6;
            let mut edges = Vec::new();
            for _ in 0..d {
                // Fisher-Yates a permutation.
                let mut perm: Vec<usize> = (0..n).collect();
                for i in (1..n).rev() {
                    perm.swap(i, next() % (i + 1));
                }
                for (x, &y) in perm.iter().enumerate() {
                    edges.push((x, y));
                }
            }
            check_coloring(n, &edges);
        }
    }
}
