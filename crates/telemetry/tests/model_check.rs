//! Shim-mode verification of the *production* telemetry structures.
//!
//! The models inside `symtensor-check` are distillations; this test is
//! the real thing: built with `RUSTFLAGS="--cfg symtensor_check"`, the
//! crate's `sync` façade routes every atomic in `cell.rs` / `rolling.rs`
//! through the instrumented shim, so the explorer schedules the actual
//! production code and the vector-clock detector audits it for races.
//! Without the cfg this file compiles to nothing.
#![cfg(symtensor_check)]

use std::sync::Arc;

use symtensor_check::model::{explore, ModelRun};
use symtensor_check::Config;
use symtensor_telemetry::{PlaneConfig, RollingHistogram, TelemetryPlane};

/// Writer sets a gauge and bumps counters while a reader snapshots the
/// same cell through the seqlock-bracketed consistent-read path.
struct CellModel {
    plane: Arc<TelemetryPlane>,
    gauge: usize,
}

impl ModelRun for CellModel {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, tid: usize) {
        let cell = self.plane.rank_cell(0);
        if tid == 0 {
            cell.on_send(0, 3);
            cell.gauge_set(self.gauge, 7);
            cell.gauge_add(self.gauge, 1);
        } else {
            let snap = self.plane.rank_snapshot(0, 0);
            let v = snap.gauges[self.gauge].value;
            assert!(
                v == 0 || v == 7 || v == 8,
                "snapshot saw a gauge value {v} no writer state explains"
            );
            // Counters are independently monotone; cross-counter skew
            // is allowed, out-of-thin-air values are not.
            let p = &snap.phases[0];
            assert!(p.words_sent == 0 || p.words_sent == 3, "words={}", p.words_sent);
            assert!(p.msgs_sent <= 1, "msgs={}", p.msgs_sent);
        }
    }

    fn finale(&self) {
        let cell = self.plane.rank_cell(0);
        assert_eq!(cell.gauge(self.gauge), 8);
        assert_eq!(cell.words_sent_total(), 3);
    }
}

#[test]
fn production_cell_is_race_free_under_the_checker() {
    let cfg = Config { preemption_bound: Some(2), max_execs: 60_000, ..Config::default() };
    let outcome = explore("telemetry-cell(prod)", &cfg, &|| {
        let plane = Arc::new(TelemetryPlane::with_config(PlaneConfig {
            ranks: 1,
            max_phases: 1,
            max_gauges: 1,
            max_hists: 0,
            slice_ns: 1_000,
            short_slices: 1,
        }));
        let gauge = plane.gauge_slot("check:gauge");
        Arc::new(CellModel { plane, gauge }) as Arc<dyn ModelRun>
    });
    assert!(
        outcome.violation.is_none(),
        "production TelemetryCell violated under the checker: {:?}",
        outcome.violation
    );
    assert!(outcome.interleavings >= 10, "explored only {}", outcome.interleavings);
}

/// Writer wraps the slice ring (exercising the fence-bracketed epoch
/// reset) while a reader merges a window; every accepted slice must be
/// internally consistent (all samples are the value 5, so sum = 5·count).
struct RollingModel {
    hist: RollingHistogram,
    wrap_ns: u64,
}

impl ModelRun for RollingModel {
    fn threads(&self) -> usize {
        2
    }

    fn thread(&self, tid: usize) {
        if tid == 0 {
            // Old epoch records the value 3; the new epoch (same ring
            // slot, forcing the fence-bracketed reset) records 5. Any 3
            // a reader of the new window sees is stale pre-reset state.
            self.hist.observe(5, 3);
            self.hist.observe(self.wrap_ns + 5, 5);
        } else {
            // The window spans only the new epoch. In-flight skew may
            // show (count, sum) of (0,0), (1,0), (0,5) or (1,5) — but
            // never the old epoch's sum of 3: the epoch re-check must
            // discard any merge that raced the reset.
            let w = self.hist.window(self.wrap_ns + 5, 1);
            assert!(w.count <= 1, "stale count {} leaked through the reset", w.count);
            assert!(w.sum == 0 || w.sum == 5, "stale sum {} leaked through the reset", w.sum);
        }
    }

    fn finale(&self) {
        let w = self.hist.window(self.wrap_ns + 5, 1);
        assert_eq!((w.count, w.sum), (1, 5));
    }
}

#[test]
fn production_rolling_histogram_is_race_free_under_the_checker() {
    let slice_ns = 10u64;
    let wrap_ns = slice_ns * symtensor_telemetry::SLICES as u64;
    let cfg = Config { preemption_bound: Some(2), max_execs: 60_000, ..Config::default() };
    let outcome = explore("rolling-histogram(prod)", &cfg, &|| {
        Arc::new(RollingModel { hist: RollingHistogram::new(slice_ns), wrap_ns })
            as Arc<dyn ModelRun>
    });
    assert!(
        outcome.violation.is_none(),
        "production RollingHistogram violated under the checker: {:?}",
        outcome.violation
    );
    assert!(outcome.interleavings >= 10, "explored only {}", outcome.interleavings);
}
