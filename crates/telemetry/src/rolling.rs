//! Rolling-window histograms: fixed power-of-two buckets over a ring of
//! time slices, so "the last 100 ms" and "the whole run" can be read from
//! the same structure — the raw material for multi-window burn rates.

use crate::sync::{fence, AtomicU64, Ordering};

/// Number of histogram buckets. Bucket `i` has upper bound `2^i` ns, so
/// the last bucket tops out at `2^39` ns ≈ 9 minutes — far beyond any
/// simulated request latency; larger values clamp into it.
pub const BUCKETS: usize = 40;

/// Number of time slices in the ring. A slice is `slice_ns` wide, so the
/// longest window the histogram can answer for is `SLICES·slice_ns`.
pub const SLICES: usize = 8;

/// Bucket index for a value: bucket 0 counts `v ≤ 1`, bucket `i` counts
/// `2^(i−1) < v ≤ 2^i` — the same boundaries as `symtensor-obs`'s
/// latency histograms (kept in sync by a cross-crate test), clamped to
/// the fixed [`BUCKETS`] range.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let i = if v <= 1 { 0 } else { 64 - (v - 1).leading_zeros() as usize };
    i.min(BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `i`: `2^i`. The last bucket's bound
/// is nominal — it also absorbs everything larger.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    1u64 << i.min(63)
}

/// One time slice: an epoch tag plus the slice's counters. The epoch is
/// the absolute slice index + 1 (0 marks "reset in progress / never
/// written"), which is what makes reads epoch-consistent: a reader
/// checks the epoch before and after reading the counters and discards
/// the slice if a reset raced it.
struct Slice {
    epoch: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Slice {
    fn new() -> Self {
        Slice {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram over a ring of [`SLICES`] time slices of `slice_ns` each.
///
/// Single writer (the owning rank/driver thread), any number of
/// concurrent readers. The writer never blocks and never takes a lock:
/// recording is a handful of relaxed atomic adds, plus — at most once
/// per slice turn-over — an epoch-guarded reset of the stale slice.
/// Readers merge the slices whose epochs fall inside the requested
/// window, retrying (bounded) any slice whose epoch changed mid-read.
/// Counter adds racing a read can skew a window by the in-flight sample;
/// windows are monotone-approximate, never torn across a reset.
pub struct RollingHistogram {
    slice_ns: u64,
    slices: Vec<Slice>,
}

impl RollingHistogram {
    /// A histogram with the given slice width (must be non-zero).
    pub fn new(slice_ns: u64) -> Self {
        assert!(slice_ns > 0, "slice width must be non-zero");
        RollingHistogram { slice_ns, slices: (0..SLICES).map(|_| Slice::new()).collect() }
    }

    /// Slice width in nanoseconds.
    #[inline]
    pub fn slice_ns(&self) -> u64 {
        self.slice_ns
    }

    /// Records `v` at time `now_ns` (nanoseconds on the plane's clock).
    /// Writer-side only — at most one thread may call this at a time.
    pub fn observe(&self, now_ns: u64, v: u64) {
        let idx = now_ns / self.slice_ns;
        let slice = &self.slices[(idx % SLICES as u64) as usize];
        // ordering: Relaxed — this thread is the only writer; the value
        // it reads back is its own last epoch store.
        if slice.epoch.load(Ordering::Relaxed) != idx + 1 {
            // The ring wrapped: this slot still holds a stale slice.
            // Publish "invalid" first so a concurrent reader can never
            // merge half-cleared counters, then the new epoch last.
            // ordering: Relaxed — the fence below orders this store.
            slice.epoch.store(0, Ordering::Relaxed);
            // A release *store* on epoch alone would not do this:
            // later stores may be hoisted above a release store.
            // ordering: Release fence — orders the invalid-epoch store
            // above before the clears below.
            fence(Ordering::Release);
            // ordering: Relaxed — bracketed by the two fences.
            slice.count.store(0, Ordering::Relaxed);
            slice.sum.store(0, Ordering::Relaxed);
            // ordering: Relaxed — same bracket as the clears above.
            slice.min.store(u64::MAX, Ordering::Relaxed);
            slice.max.store(0, Ordering::Relaxed);
            for b in &slice.buckets {
                // ordering: Relaxed — see the clear block above.
                b.store(0, Ordering::Relaxed);
            }
            // ordering: Release — publishes the completed clears before
            // the new epoch; pairs with the reader's Acquire epoch load.
            slice.epoch.store(idx + 1, Ordering::Release);
        }
        debug_assert_eq!(
            // ordering: Relaxed — debug-only single-writer probe.
            slice.epoch.load(Ordering::Relaxed),
            idx + 1,
            "concurrent RollingHistogram::observe: the writer side is single-writer by contract"
        );
        // ordering: Relaxed — single-writer adds into the live slice.
        slice.count.fetch_add(1, Ordering::Relaxed);
        slice.sum.fetch_add(v, Ordering::Relaxed);
        // ordering: Relaxed — same as the adds above.
        slice.min.fetch_min(v, Ordering::Relaxed);
        slice.max.fetch_max(v, Ordering::Relaxed);
        // ordering: Relaxed — same as the adds above.
        slice.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges the last `n_slices` slices (ending at the slice containing
    /// `now_ns`) into one [`HistogramWindow`]. `n_slices` is clamped to
    /// [`SLICES`]; pass `SLICES` for the longest available window.
    pub fn window(&self, now_ns: u64, n_slices: usize) -> HistogramWindow {
        let n = n_slices.clamp(1, SLICES) as u64;
        let cur = now_ns / self.slice_ns;
        let lo = cur.saturating_sub(n - 1);
        let mut out = HistogramWindow::empty();
        for slice in &self.slices {
            for _ in 0..4 {
                // ordering: Acquire — pairs with the writer's release
                // epoch publish: a valid epoch implies complete clears.
                let e1 = slice.epoch.load(Ordering::Acquire);
                if e1 == 0 || e1 - 1 < lo || e1 - 1 > cur {
                    break; // never written, mid-reset, or outside the window
                }
                // ordering: Relaxed — the epoch re-check catches resets.
                let count = slice.count.load(Ordering::Relaxed);
                let sum = slice.sum.load(Ordering::Relaxed);
                // ordering: Relaxed — see the counter reads above.
                let min = slice.min.load(Ordering::Relaxed);
                let max = slice.max.load(Ordering::Relaxed);
                let mut buckets = [0u64; BUCKETS];
                for (dst, src) in buckets.iter_mut().zip(&slice.buckets) {
                    // ordering: Relaxed — see the counter reads above.
                    *dst = src.load(Ordering::Relaxed);
                }
                // A bare acquire re-load would let the reads sink past
                // the check; pairs with the writer's release fence.
                // ordering: Acquire fence — keeps the counter reads
                // above the epoch re-check below.
                fence(Ordering::Acquire);
                // ordering: Relaxed — the fence above orders this load.
                if slice.epoch.load(Ordering::Relaxed) != e1 {
                    continue; // a reset raced the read: retry the slice
                }
                out.count += count;
                out.sum += sum;
                if count > 0 {
                    out.min = Some(out.min.map_or(min, |m| m.min(min)));
                    out.max = Some(out.max.map_or(max, |m| m.max(max)));
                }
                for (dst, src) in out.buckets.iter_mut().zip(buckets) {
                    *dst += src;
                }
                break;
            }
        }
        out
    }
}

/// The merged contents of one time window of a [`RollingHistogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramWindow {
    /// Samples in the window.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample, `None` when the window is empty.
    pub min: Option<u64>,
    /// Largest sample, `None` when the window is empty.
    pub max: Option<u64>,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl HistogramWindow {
    /// The empty window.
    pub fn empty() -> Self {
        HistogramWindow { count: 0, sum: 0, min: None, max: None, buckets: [0; BUCKETS] }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket-resolution quantile: the upper bound of the first bucket
    /// whose cumulative count reaches `q·count` (so an upper bound on the
    /// true quantile, tight to a factor of 2). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(bucket_upper_bound(i).min(self.max.unwrap_or(u64::MAX)));
            }
        }
        self.max
    }

    /// Fraction of samples whose value exceeds `threshold`, at bucket
    /// resolution: samples in buckets strictly above `threshold`'s bucket
    /// count as over (so a slight *under*-estimate — values sharing the
    /// threshold's bucket are counted as within budget). Returns 0.0 for
    /// an empty window.
    pub fn frac_over(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let cut = bucket_index(threshold);
        let over: u64 = self.buckets[cut + 1..].iter().sum();
        over as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 20), 20);
        assert_eq!(bucket_index((1 << 20) + 1), 21);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn observe_and_window_roundtrip() {
        let h = RollingHistogram::new(1_000);
        h.observe(100, 7);
        h.observe(200, 9);
        h.observe(1_500, 100);
        let w = h.window(1_500, SLICES);
        assert_eq!(w.count, 3);
        assert_eq!(w.sum, 116);
        assert_eq!(w.min, Some(7));
        assert_eq!(w.max, Some(100));
        // Short window sees only the second slice.
        let short = h.window(1_500, 1);
        assert_eq!(short.count, 1);
        assert_eq!(short.sum, 100);
    }

    #[test]
    fn ring_wraparound_resets_stale_slices() {
        let h = RollingHistogram::new(100);
        h.observe(50, 1); // slice 0
        for s in 1..=SLICES as u64 {
            h.observe(s * 100 + 50, 2); // slices 1..=SLICES; SLICES wraps onto 0
        }
        let w = h.window(SLICES as u64 * 100 + 50, SLICES);
        // The original slice-0 sample was overwritten by the wrap.
        assert_eq!(w.count, SLICES as u64);
        assert_eq!(w.sum, 2 * SLICES as u64);
    }

    #[test]
    fn quantile_is_a_bucketed_upper_bound() {
        let h = RollingHistogram::new(1_000_000);
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(0, v);
        }
        let w = h.window(0, SLICES);
        let p50 = w.quantile(0.5).unwrap();
        assert!((20..=32).contains(&p50), "p50={p50}");
        // p100 is clamped to the observed max, not the bucket bound.
        assert_eq!(w.quantile(1.0), Some(1000));
        assert_eq!(HistogramWindow::empty().quantile(0.99), None);
    }

    #[test]
    fn frac_over_counts_strictly_above_the_threshold_bucket() {
        let h = RollingHistogram::new(1_000_000);
        for v in [1u64, 1, 1, 1000, 1000] {
            h.observe(0, v);
        }
        let w = h.window(0, SLICES);
        assert_eq!(w.frac_over(1), 0.4);
        assert_eq!(w.frac_over(1 << 12), 0.0);
        assert_eq!(HistogramWindow::empty().frac_over(1), 0.0);
    }
}
