//! Live metrics plane for the symtensor runtime.
//!
//! Every observability layer before this one (trace spans, the αβγ replay
//! profiler, the flight recorder) is post-hoc: you learn a rank straggled
//! or an SLO burned only after the run ends. This crate is the *live*
//! plane: ranks publish into lock-free per-rank [`TelemetryCell`]s at
//! near-zero cost while a [`Scraper`] samples the whole cluster at a
//! configurable interval, reconciling what it sees against the paper's
//! closed-form budgets in real time.
//!
//! Pieces:
//!
//! - [`TelemetryCell`] — one per rank plus one for the serving driver:
//!   per-phase word/message counters, named gauges and rolling-window
//!   histograms. Writes are single-writer relaxed atomics (the owning
//!   thread), reads are epoch-consistent and never block the writer.
//! - [`RollingHistogram`] — fixed power-of-two buckets (the same bucket
//!   boundaries as `symtensor-obs`) over `SLICES` time slices, so recent
//!   windows can be read separately from the whole history: the raw
//!   material for multi-window burn rates.
//! - [`TelemetryPlane`] — the shared registry (phase/gauge/histogram
//!   names interned to slot indices), the cells, and the alert log.
//! - [`Scraper`] — samples all cells into [`ClusterSnapshot`]s with
//!   derived gauges (budget ratio vs `2·scheduled_words_per_vector`,
//!   straggler λ, overlap efficiency, serve queue state).
//! - [`SloBurnRate`] — multi-window burn-rate evaluator (fast-burn short
//!   window AND sustained long window) raising [`SloAlert`]s that ranks
//!   also stamp into their flight recorders.
//! - [`prometheus_text`] / [`render_table`] — Prometheus text exposition
//!   and the plain-text rank×phase table behind the `monitor` binary.
//!
//! The crate is dependency-free (std only) and knows nothing about the
//! simulator; `symtensor-mpsim` and `symtensor-parallel` publish into it.

pub mod cell;
pub mod expose;
pub mod plane;
pub mod rolling;
pub mod scrape;
pub mod slo;
pub(crate) mod sync;

pub use cell::{CellSnapshot, GaugeSnapshot, HistSnapshot, PhaseSnapshot, TelemetryCell};
pub use expose::{prometheus_text, render_table};
pub use plane::{PlaneConfig, SloAlert, TelemetryPlane, UNPHASED};
pub use rolling::{bucket_index, bucket_upper_bound, HistogramWindow, RollingHistogram};
pub use rolling::{BUCKETS, SLICES};
pub use scrape::{
    sample_plane, ClusterSnapshot, DerivedGauges, ScrapeConfig, Scraper, TelemetrySeries,
};
pub use slo::SloBurnRate;

/// Conventional metric names shared by the publishers (mpsim's `Comm`,
/// the serve loop, the overlapped-exchange driver) and the consumers
/// (scraper derived gauges, SLO evaluator, exposition). Using the
/// constants keeps publisher and consumer agreeing on interned slots.
pub mod keys {
    /// Serve gauge: requests admitted but not yet completed.
    pub const QUEUE_DEPTH: &str = "serve:queue_depth";
    /// Serve gauge: current batch fill as a percentage of `batch_cap`.
    pub const BATCH_OCCUPANCY_PCT: &str = "serve:batch_occupancy_pct";
    /// Serve gauge (monotone): chaos-serve retry attempts so far.
    pub const RETRIES: &str = "serve:retries";
    /// Serve gauge (monotone): requests completed on the degraded
    /// sequential fallback.
    pub const DEGRADED: &str = "serve:degraded";
    /// Serve gauge (monotone): vectors fully served (for budget ratios).
    pub const VECTORS_DONE: &str = "serve:vectors_done";
    /// Serve gauge (monotone): requests completed.
    pub const REQUESTS_DONE: &str = "serve:requests_done";
    /// Per-rank gauge (monotone): exchange nanoseconds hidden behind
    /// overlapped compute (PR-7 decomposition, live counterpart).
    pub const HIDDEN_NS: &str = "overlap:hidden_ns";
    /// Per-rank gauge (monotone): exchange nanoseconds left exposed
    /// (blocked in `recv_any` with nothing to compute).
    pub const EXPOSED_NS: &str = "overlap:exposed_ns";
    /// Per-rank gauge: flight-recorder self-measured overhead. Published
    /// from the recorder's monotone non-negative counter, so this can
    /// never go negative even on coarse clocks.
    pub const FLIGHT_OVERHEAD_NS: &str = "flight:overhead_ns";
    /// Serve histogram: end-to-end request latency.
    pub const E2E_NS: &str = "serve:e2e_ns";
    /// Serve histogram: request queue wait.
    pub const QUEUE_WAIT_NS: &str = "serve:queue_wait_ns";
}
