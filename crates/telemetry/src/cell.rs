//! The per-rank telemetry cell: phase-sliced traffic counters, named
//! gauges and rolling histograms, written lock-free by the owning thread
//! and snapshot by the scraper without ever blocking the writer.

use crate::rolling::{HistogramWindow, RollingHistogram};
use crate::sync::{fence, AtomicU64, Ordering};

/// Traffic counters for one phase slot (see
/// [`crate::TelemetryPlane::phase_slot`]). All monotone.
#[derive(Default)]
pub(crate) struct PhaseCounters {
    pub(crate) words_sent: AtomicU64,
    pub(crate) words_recv: AtomicU64,
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) msgs_recv: AtomicU64,
}

/// One rank's (or the serving driver's) live metrics.
///
/// Writes are **single-writer**: exactly one thread owns the cell at any
/// time (the rank's thread during a universe run, the driver between
/// runs) and publishes with relaxed atomic adds — no locks, no CAS loops
/// on the hot path. Reads come from any thread: the monotone counters
/// are taken as-is, the non-monotone state (gauge `set`s) is guarded by
/// a cell-level seqlock so a snapshot is epoch-consistent — a reader
/// that races a multi-word update retries (bounded) instead of seeing a
/// torn value, and never blocks or slows the writer.
pub struct TelemetryCell {
    /// Seqlock for non-monotone writes (odd = write in progress). Only
    /// gauge `set`s bump it — the hot counter path stays pure adds.
    seq: AtomicU64,
    phases: Vec<PhaseCounters>,
    gauges: Vec<AtomicU64>,
    hists: Vec<RollingHistogram>,
}

impl TelemetryCell {
    pub(crate) fn new(n_phases: usize, n_gauges: usize, n_hists: usize, slice_ns: u64) -> Self {
        TelemetryCell {
            seq: AtomicU64::new(0),
            phases: (0..n_phases).map(|_| PhaseCounters::default()).collect(),
            gauges: (0..n_gauges).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..n_hists).map(|_| RollingHistogram::new(slice_ns)).collect(),
        }
    }

    /// Charges one sent message of `words` words to phase slot `slot`.
    #[inline]
    pub fn on_send(&self, slot: usize, words: u64) {
        let c = &self.phases[slot];
        // ordering: Relaxed — monotone counters; no other data rides on them.
        c.words_sent.fetch_add(words, Ordering::Relaxed);
        c.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Charges one received message of `words` words to phase slot `slot`.
    #[inline]
    pub fn on_recv(&self, slot: usize, words: u64) {
        let c = &self.phases[slot];
        // ordering: Relaxed — monotone counters, same as `on_send`.
        c.words_recv.fetch_add(words, Ordering::Relaxed);
        c.msgs_recv.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v` to gauge slot `slot` (monotone publish — no seqlock).
    #[inline]
    pub fn gauge_add(&self, slot: usize, v: u64) {
        // ordering: Relaxed — a monotone add; a reader that misses it
        // sees a slightly stale (still valid) value, never a torn one.
        self.gauges[slot].fetch_add(v, Ordering::Relaxed);
    }

    /// Sets gauge slot `slot` to `v`. Non-monotone, so the write is
    /// bracketed by the cell seqlock (two uncontended atomic adds and a
    /// fence — the writer never waits).
    ///
    /// Seqlock writer recipe (verified by the `seqlock` model in
    /// `symtensor-check`): the entry increment makes `seq` odd, the
    /// release fence orders that odd publish before the data store for
    /// any fence-synchronized reader, and the release exit increment
    /// publishes the completed data before `seq` turns even again. The
    /// original form (`fetch_add(Release); store; fetch_add(Release)`)
    /// was a real bug: a release RMW does not stop the *later* data
    /// store from being hoisted above it, so a reader could observe the
    /// mid-write value under an even, unchanged `seq`.
    pub fn gauge_set(&self, slot: usize, v: u64) {
        // ordering: Relaxed — the fence below provides the ordering;
        // the increment itself only needs atomicity.
        let entry = self.seq.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(
            entry & 1,
            0,
            "concurrent gauge_set: TelemetryCell writes are single-writer by contract"
        );
        // ordering: Release fence — orders the odd `seq` publish before
        // the data store for any acquire-fence-synchronized reader.
        fence(Ordering::Release);
        // ordering: Relaxed — the surrounding seqlock carries ordering.
        self.gauges[slot].store(v, Ordering::Relaxed);
        // ordering: Release — publishes the data store before the even
        // exit value of `seq`; pairs with the reader's first Acquire load.
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Current value of gauge slot `slot`.
    #[inline]
    pub fn gauge(&self, slot: usize) -> u64 {
        // ordering: Relaxed — single-word read; callers needing a
        // multi-word-consistent view go through `read_consistent`.
        self.gauges[slot].load(Ordering::Relaxed)
    }

    /// Records `v` into histogram slot `slot` at time `now_ns`.
    #[inline]
    pub fn observe(&self, slot: usize, now_ns: u64, v: u64) {
        self.hists[slot].observe(now_ns, v);
    }

    /// Reads the last `n_slices` slices of histogram slot `slot`.
    pub fn hist_window(&self, slot: usize, now_ns: u64, n_slices: usize) -> HistogramWindow {
        self.hists[slot].window(now_ns, n_slices)
    }

    /// Total words sent across all phase slots (straggler-λ input).
    pub fn words_sent_total(&self) -> u64 {
        // ordering: Relaxed — monotone counter sum; staleness is fine.
        self.phases.iter().map(|c| c.words_sent.load(Ordering::Relaxed)).sum()
    }

    /// Runs `read` under the cell seqlock: retries (up to 8 times) while
    /// a non-monotone write is in flight, then accepts the possibly
    /// mid-flight read rather than ever blocking — a snapshot is a
    /// diagnostic, the hot path is the product.
    ///
    /// Seqlock reader recipe (verified by the `seqlock` model in
    /// `symtensor-check`): the first load is Acquire (pairs with the
    /// writer's release exit), the acquire fence keeps the data reads
    /// from sinking below the second `seq` check, and the second load
    /// can then be Relaxed. The original form re-checked `seq` with a
    /// bare Acquire load, which does not stop earlier data reads from
    /// being reordered *after* it — a torn snapshot could pass the check.
    pub(crate) fn read_consistent<R>(&self, read: impl Fn() -> R) -> R {
        for _ in 0..8 {
            // ordering: Acquire — synchronizes with the writer's release
            // exit increment, so an even value implies complete data.
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let r = read();
            // ordering: Acquire fence — keeps the data reads above the
            // re-check; pairs with the writer's entry release fence.
            fence(Ordering::Acquire);
            // ordering: Relaxed — the fence above already orders this
            // load after the data reads.
            if self.seq.load(Ordering::Relaxed) == s1 {
                return r;
            }
        }
        read()
    }

    /// Decodes the cell against the plane's registries. `phase_labels`
    /// etc. are the interned names in slot order; `now_ns`/`short_slices`
    /// parameterize the histogram windows.
    pub(crate) fn snapshot(
        &self,
        phase_labels: &[&'static str],
        gauge_names: &[&'static str],
        hist_names: &[&'static str],
        now_ns: u64,
        short_slices: usize,
    ) -> CellSnapshot {
        self.read_consistent(|| CellSnapshot {
            phases: phase_labels
                .iter()
                .enumerate()
                .map(|(i, &label)| {
                    let c = &self.phases[i];
                    // Monotone counters inside a `read_consistent`
                    // bracket; the seqlock supplies consistency for the
                    // non-monotone state.
                    PhaseSnapshot {
                        label,
                        // ordering: Relaxed — monotone counter reads.
                        words_sent: c.words_sent.load(Ordering::Relaxed),
                        words_recv: c.words_recv.load(Ordering::Relaxed),
                        // ordering: Relaxed — monotone counter reads.
                        msgs_sent: c.msgs_sent.load(Ordering::Relaxed),
                        msgs_recv: c.msgs_recv.load(Ordering::Relaxed),
                    }
                })
                .collect(),
            gauges: gauge_names
                .iter()
                .enumerate()
                .map(|(i, &name)| GaugeSnapshot { name, value: self.gauge(i) })
                .collect(),
            hists: hist_names
                .iter()
                .enumerate()
                .map(|(i, &name)| HistSnapshot {
                    name,
                    long: self.hists[i].window(now_ns, crate::SLICES),
                    short: self.hists[i].window(now_ns, short_slices),
                })
                .collect(),
        })
    }
}

/// Decoded traffic counters of one phase slot.
#[derive(Clone, Debug)]
pub struct PhaseSnapshot {
    /// Interned phase label ([`crate::UNPHASED`] for slot 0).
    pub label: &'static str,
    /// Words sent in this phase so far.
    pub words_sent: u64,
    /// Words received in this phase so far.
    pub words_recv: u64,
    /// Messages sent in this phase so far.
    pub msgs_sent: u64,
    /// Messages received in this phase so far.
    pub msgs_recv: u64,
}

/// Decoded gauge value.
#[derive(Clone, Debug)]
pub struct GaugeSnapshot {
    /// Interned gauge name (see [`crate::keys`]).
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// Decoded rolling histogram: the full window plus the short window the
/// burn-rate evaluator uses.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Interned histogram name (see [`crate::keys`]).
    pub name: &'static str,
    /// Merge of all live slices.
    pub long: HistogramWindow,
    /// Merge of the most recent `short_slices` slices.
    pub short: HistogramWindow,
}

/// One cell, fully decoded. Only slots registered at snapshot time
/// appear (registries only grow, so later snapshots are supersets).
#[derive(Clone, Debug)]
pub struct CellSnapshot {
    /// Per-phase traffic counters, in slot order.
    pub phases: Vec<PhaseSnapshot>,
    /// Gauges, in slot order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Rolling histograms, in slot order.
    pub hists: Vec<HistSnapshot>,
}

impl CellSnapshot {
    /// The empty snapshot.
    pub fn empty() -> Self {
        CellSnapshot { phases: Vec::new(), gauges: Vec::new(), hists: Vec::new() }
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a phase by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.label == label)
    }

    /// Looks up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Total words sent across all phases.
    pub fn words_sent_total(&self) -> u64 {
        self.phases.iter().map(|p| p.words_sent).sum()
    }

    /// Total words received across all phases.
    pub fn words_recv_total(&self) -> u64 {
        self.phases.iter().map(|p| p.words_recv).sum()
    }
}
