//! Exposition: Prometheus text format and the plain-text rank×phase
//! table the `monitor` binary renders. Both are pure functions of a
//! [`ClusterSnapshot`], so golden-file tests pin the exact bytes.

use crate::rolling::{bucket_upper_bound, HistogramWindow};
use crate::scrape::ClusterSnapshot;
use std::fmt::Write;

/// Escapes a Prometheus label value: backslash, double-quote and
/// newline, per the text exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric-name fragment: anything outside `[a-zA-Z0-9_]`
/// becomes `_` (so `serve:e2e_ns` → `serve_e2e_ns`).
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

fn family(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn hist_family(out: &mut String, name: &str, help: &str, w: &HistogramWindow) {
    family(out, name, help, "histogram");
    let mut cum = 0u64;
    let last = w.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
    for (i, &c) in w.buckets[..=last].iter().enumerate() {
        cum += c;
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper_bound(i));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", w.count);
    let _ = writeln!(out, "{name}_sum {}", w.sum);
    let _ = writeln!(out, "{name}_count {}", w.count);
}

/// Renders one sample in the Prometheus text exposition format.
///
/// The output is deterministic for a given snapshot: metric families
/// appear in a fixed order, and series within a family are sorted by
/// their label values. Optional derived gauges (budget ratio, straggler
/// λ, overlap efficiency) are emitted only when defined.
pub fn prometheus_text(snap: &ClusterSnapshot) -> String {
    let mut out = String::new();
    let d = &snap.derived;

    family(&mut out, "symtensor_alerts_total", "SLO burn-rate alerts raised.", "counter");
    let _ = writeln!(out, "symtensor_alerts_total {}", snap.alerts.len());

    family(
        &mut out,
        "symtensor_batch_occupancy_pct",
        "Current serve batch fill, percent of capacity.",
        "gauge",
    );
    let _ = writeln!(out, "symtensor_batch_occupancy_pct {}", d.batch_occupancy_pct);

    if let Some(ratio) = d.budget_ratio {
        family(
            &mut out,
            "symtensor_budget_ratio",
            "Sent words vs the scheduled 2*words_per_vector budget (1.0 = on theory).",
            "gauge",
        );
        let _ = writeln!(out, "symtensor_budget_ratio {ratio}");
    }

    family(
        &mut out,
        "symtensor_degraded_total",
        "Requests completed on the degraded fallback.",
        "counter",
    );
    let _ = writeln!(out, "symtensor_degraded_total {}", d.degraded);

    if let Some(eff) = d.overlap_efficiency {
        family(
            &mut out,
            "symtensor_overlap_efficiency",
            "Hidden fraction of overlapped exchange time.",
            "gauge",
        );
        let _ = writeln!(out, "symtensor_overlap_efficiency {eff}");
    }
    family(
        &mut out,
        "symtensor_overlap_exposed_ns_total",
        "Exchange nanoseconds left exposed, summed over ranks.",
        "counter",
    );
    let _ = writeln!(out, "symtensor_overlap_exposed_ns_total {}", d.exposed_comm_ns);
    family(
        &mut out,
        "symtensor_overlap_hidden_ns_total",
        "Exchange nanoseconds hidden behind compute, summed over ranks.",
        "counter",
    );
    let _ = writeln!(out, "symtensor_overlap_hidden_ns_total {}", d.hidden_comm_ns);

    // Per-rank, per-phase traffic: series sorted by (rank, phase, dir).
    type Pick = fn(&crate::PhaseSnapshot) -> u64;
    let families: [(&str, &str, Pick, Pick); 2] = [
        (
            "symtensor_phase_msgs_total",
            "Messages by rank, phase and direction.",
            |p| p.msgs_sent,
            |p| p.msgs_recv,
        ),
        (
            "symtensor_phase_words_total",
            "Words by rank, phase and direction.",
            |p| p.words_sent,
            |p| p.words_recv,
        ),
    ];
    for (fam, help, pick_sent, pick_recv) in families {
        family(&mut out, fam, help, "counter");
        for (rank, cell) in snap.ranks.iter().enumerate() {
            let mut phases: Vec<&crate::PhaseSnapshot> = cell.phases.iter().collect();
            phases.sort_by_key(|p| p.label);
            for p in phases {
                let label = escape_label(p.label);
                let _ = writeln!(
                    out,
                    "{fam}{{rank=\"{rank}\",phase=\"{label}\",dir=\"recv\"}} {}",
                    pick_recv(p)
                );
                let _ = writeln!(
                    out,
                    "{fam}{{rank=\"{rank}\",phase=\"{label}\",dir=\"sent\"}} {}",
                    pick_sent(p)
                );
            }
        }
    }

    family(&mut out, "symtensor_queue_depth", "Requests admitted but not completed.", "gauge");
    let _ = writeln!(out, "symtensor_queue_depth {}", d.queue_depth);

    family(&mut out, "symtensor_rank_gauge", "Per-rank named gauges.", "gauge");
    for (rank, cell) in snap.ranks.iter().enumerate() {
        let mut gauges: Vec<_> = cell.gauges.iter().collect();
        gauges.sort_by_key(|g| g.name);
        for g in gauges {
            let name = escape_label(g.name);
            let _ = writeln!(
                out,
                "symtensor_rank_gauge{{rank=\"{rank}\",name=\"{name}\"}} {}",
                g.value
            );
        }
    }

    family(&mut out, "symtensor_retries_total", "Chaos-serve retry attempts.", "counter");
    let _ = writeln!(out, "symtensor_retries_total {}", d.retries);

    family(&mut out, "symtensor_sample_time_ns", "Plane-clock sample time.", "gauge");
    let _ = writeln!(out, "symtensor_sample_time_ns {}", snap.t_ns);

    family(&mut out, "symtensor_serve_gauge", "Serving-driver named gauges.", "gauge");
    let mut gauges: Vec<_> = snap.serve.gauges.iter().collect();
    gauges.sort_by_key(|g| g.name);
    for g in gauges {
        let name = escape_label(g.name);
        let _ = writeln!(out, "symtensor_serve_gauge{{name=\"{name}\"}} {}", g.value);
    }

    // Serve histograms (full window), one Prometheus histogram each.
    let mut hists: Vec<_> = snap.serve.hists.iter().collect();
    hists.sort_by_key(|h| h.name);
    for h in hists {
        let name = format!("symtensor_{}", sanitize(h.name));
        hist_family(&mut out, &name, "Rolling-window latency histogram (full window).", &h.long);
    }

    if let Some(lambda) = d.straggler_lambda {
        family(
            &mut out,
            "symtensor_straggler_lambda",
            "Live max/mean per-rank sent-word imbalance.",
            "gauge",
        );
        let _ = writeln!(out, "symtensor_straggler_lambda {lambda}");
    }

    family(&mut out, "symtensor_words_sent_total", "Words sent, all ranks and phases.", "counter");
    let _ = writeln!(out, "symtensor_words_sent_total {}", d.total_words_sent);

    out
}

/// Renders the top-style rank×phase view of one sample: a header with
/// the serve/derived gauges, then one row per (rank, phase) with
/// traffic counters. Plain text, fixed-width columns, no ANSI — the
/// `monitor` binary adds screen clearing around it.
pub fn render_table(snap: &ClusterSnapshot) -> String {
    let mut out = String::new();
    let d = &snap.derived;
    let _ = writeln!(
        out,
        "symtensor monitor  t={:.3}s  queue={} occ={}% retries={} degraded={} alerts={}",
        snap.t_ns as f64 / 1e9,
        d.queue_depth,
        d.batch_occupancy_pct,
        d.retries,
        d.degraded,
        snap.alerts.len(),
    );
    let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3}"));
    let _ = writeln!(
        out,
        "words_sent={}  budget_ratio={}  lambda={}  overlap_eff={}  hidden={}ns exposed={}ns",
        d.total_words_sent,
        fmt_opt(d.budget_ratio),
        fmt_opt(d.straggler_lambda),
        fmt_opt(d.overlap_efficiency),
        d.hidden_comm_ns,
        d.exposed_comm_ns,
    );
    if let Some(h) = snap.serve.hist(crate::keys::E2E_NS) {
        let q =
            |w: &HistogramWindow, p: f64| w.quantile(p).map_or("-".to_string(), |v| format!("{v}"));
        let _ = writeln!(
            out,
            "e2e_ns: count={} p50={} p99={} max={}  (short: count={} p99={})",
            h.long.count,
            q(&h.long, 0.5),
            q(&h.long, 0.99),
            h.long.max.map_or("-".to_string(), |v| v.to_string()),
            h.short.count,
            q(&h.short, 0.99),
        );
    }
    let _ = writeln!(
        out,
        "{:<6} {:<18} {:>12} {:>12} {:>10} {:>10}",
        "rank", "phase", "words_sent", "words_recv", "msgs_sent", "msgs_recv"
    );
    for (rank, cell) in snap.ranks.iter().enumerate() {
        for p in &cell.phases {
            if p.words_sent == 0 && p.words_recv == 0 && p.msgs_sent == 0 && p.msgs_recv == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{rank:<6} {:<18} {:>12} {:>12} {:>10} {:>10}",
                p.label, p.words_sent, p.words_recv, p.msgs_sent, p.msgs_recv
            );
        }
    }
    for alert in &snap.alerts {
        let _ = writeln!(
            out,
            "ALERT #{} {} t={:.3}s short_burn={:.2} long_burn={:.2} budget={}ns",
            alert.id,
            alert.slo,
            alert.t_ns as f64 / 1e9,
            alert.short_burn,
            alert.long_burn,
            alert.budget_ns,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;
    use crate::plane::{PlaneConfig, TelemetryPlane};
    use crate::scrape::{sample_plane, ScrapeConfig};

    fn sample() -> ClusterSnapshot {
        let plane = TelemetryPlane::with_config(PlaneConfig::new(2).with_slice_ns(1 << 40));
        let gather = plane.phase_slot("gather-x");
        plane.rank_cell(0).on_send(gather, 12);
        plane.rank_cell(1).on_recv(gather, 12);
        let e2e = plane.hist_slot(keys::E2E_NS);
        plane.serve_cell().observe(e2e, 0, 900);
        let mut snap = sample_plane(&plane, &ScrapeConfig::default());
        snap.t_ns = 42; // pin the only wall-clock-dependent field
        snap
    }

    #[test]
    fn prometheus_output_is_deterministic_and_escaped() {
        let a = prometheus_text(&sample());
        let b = prometheus_text(&sample());
        assert_eq!(a, b, "same logical sample renders identical bytes");
        assert!(a.contains("# TYPE symtensor_phase_words_total counter"));
        assert!(a.contains(
            "symtensor_phase_words_total{rank=\"0\",phase=\"gather-x\",dir=\"sent\"} 12"
        ));
        assert!(a.contains("symtensor_serve_e2e_ns_count 1"));
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(sanitize("serve:e2e-ns"), "serve_e2e_ns");
    }

    #[test]
    fn table_lists_active_phases_only() {
        let table = render_table(&sample());
        assert!(table.contains("gather-x"));
        assert!(!table.contains(crate::UNPHASED), "all-zero rows are suppressed");
        assert!(table.contains("e2e_ns: count=1"));
    }
}
