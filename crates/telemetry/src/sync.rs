//! Atomic façade for the lock-free plane.
//!
//! Production builds re-export `std::sync::atomic` unchanged; under
//! `--cfg symtensor_check` (set via `RUSTFLAGS`, never a cargo feature,
//! so feature unification cannot leak it into release builds) the same
//! names resolve to `symtensor-check`'s instrumented shim, turning every
//! atomic access in this crate into a scheduling point of the model
//! checker. All concurrency-bearing code in this crate must import
//! atomics from here — the `no-raw-atomics` source lint enforces it.

#[cfg(symtensor_check)]
pub(crate) use symtensor_check::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(not(symtensor_check))]
pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
