//! Multi-window SLO burn-rate evaluation (the SRE-handbook shape): an
//! alert fires only when the *short* window burns error budget at ≥
//! `fast_factor`× the sustainable rate **and** the *long* window burns
//! at ≥ 1× — fast enough to catch an incident inside one scrape
//! interval, immune to a single slow request tripping it.

use crate::plane::{SloAlert, TelemetryPlane};
use crate::rolling::SLICES;

/// A latency-budget SLO over one of the serve cell's rolling histograms
/// plus the evaluator state (cooldown) for it.
///
/// Burn rate = (fraction of requests over `budget_ns`) / (1 − objective):
/// 1.0 means the error budget is being spent exactly as fast as the
/// objective allows; 5.0 means five times too fast.
#[derive(Clone, Debug)]
pub struct SloBurnRate {
    /// Which serve histogram to read (e.g. [`crate::keys::E2E_NS`]).
    pub hist: &'static str,
    /// Per-request latency budget.
    pub budget_ns: u64,
    /// Objective fraction of requests that must meet the budget
    /// (e.g. 0.99 ⇒ a 1% error budget).
    pub objective: f64,
    /// Short-window burn multiple required to fire (e.g. 5.0).
    pub fast_factor: f64,
    /// Slices in the short window.
    pub short_slices: usize,
    /// Slices in the long window.
    pub long_slices: usize,
    /// Minimum plane-time between two alerts from this evaluator, so a
    /// sustained burn produces a paced stream instead of one alert per
    /// evaluation.
    pub cooldown_ns: u64,
    fired_at: Option<u64>,
}

impl SloBurnRate {
    /// A p99-style end-to-end latency SLO over
    /// [`crate::keys::E2E_NS`]: 0.99 objective, 5× fast factor,
    /// 2-slice short window, full-ring long window, 1 ms cooldown.
    pub fn serve_e2e(budget_ns: u64) -> Self {
        SloBurnRate {
            hist: crate::keys::E2E_NS,
            budget_ns,
            objective: 0.99,
            fast_factor: 5.0,
            short_slices: 2,
            long_slices: SLICES,
            cooldown_ns: 1_000_000,
            fired_at: None,
        }
    }

    /// Overrides the objective.
    pub fn with_objective(mut self, objective: f64) -> Self {
        self.objective = objective;
        self
    }

    /// Overrides the fast factor.
    pub fn with_fast_factor(mut self, fast_factor: f64) -> Self {
        self.fast_factor = fast_factor;
        self
    }

    /// Current (short, long) burn rates, or `None` while either window
    /// is still empty.
    pub fn burn_rates(&self, plane: &TelemetryPlane) -> Option<(f64, f64)> {
        let slot = plane.hist_slot(self.hist);
        let now = plane.now_ns();
        let cell = plane.serve_cell();
        let short = cell.hist_window(slot, now, self.short_slices);
        let long = cell.hist_window(slot, now, self.long_slices);
        if short.count == 0 || long.count == 0 {
            return None;
        }
        let error_budget = (1.0 - self.objective).max(1e-9);
        Some((
            short.frac_over(self.budget_ns) / error_budget,
            long.frac_over(self.budget_ns) / error_budget,
        ))
    }

    /// Evaluates the SLO now: when both windows burn past their
    /// thresholds (and the cooldown has elapsed), raises an alert on the
    /// plane and returns it. Ranks polling the plane will stamp the
    /// alert into their flight recorders on their next communicator
    /// touch.
    pub fn evaluate(&mut self, plane: &TelemetryPlane) -> Option<SloAlert> {
        let (short_burn, long_burn) = self.burn_rates(plane)?;
        if short_burn < self.fast_factor || long_burn < 1.0 {
            return None;
        }
        let now = plane.now_ns();
        if let Some(t) = self.fired_at {
            if now.saturating_sub(t) < self.cooldown_ns {
                return None;
            }
        }
        self.fired_at = Some(now);
        let slot = plane.hist_slot(self.hist);
        let short = plane.serve_cell().hist_window(slot, now, self.short_slices);
        let mut alert = SloAlert {
            id: 0,
            t_ns: now,
            slo: self.hist,
            budget_ns: self.budget_ns,
            objective: self.objective,
            short_burn,
            long_burn,
            short_p99_ns: short.quantile(0.99),
        };
        alert.id = plane.raise_alert(alert.clone());
        Some(alert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;
    use crate::plane::PlaneConfig;

    fn plane_with_e2e(values_over: usize, values_under: usize) -> TelemetryPlane {
        let plane = TelemetryPlane::with_config(PlaneConfig::new(1).with_slice_ns(1 << 40));
        let slot = plane.hist_slot(keys::E2E_NS);
        let now = plane.now_ns();
        for _ in 0..values_over {
            plane.serve_cell().observe(slot, now, 1_000_000); // 1 ms
        }
        for _ in 0..values_under {
            plane.serve_cell().observe(slot, now, 10); // 10 ns
        }
        plane
    }

    #[test]
    fn burns_fire_only_when_both_windows_exceed() {
        // Budget 100 ns, objective 0.99: every 1 ms request burns budget.
        let plane = plane_with_e2e(10, 0);
        let mut slo = SloBurnRate::serve_e2e(100);
        let (short, long) = slo.burn_rates(&plane).expect("windows are non-empty");
        assert!(short >= 5.0 && long >= 1.0, "short={short} long={long}");
        let alert = slo.evaluate(&plane).expect("alert fires");
        assert_eq!(alert.slo, keys::E2E_NS);
        assert_eq!(alert.id, 0);
        assert!(alert.short_burn >= 5.0 && alert.long_burn >= 1.0);
        assert_eq!(plane.alerts().len(), 1);
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let plane = plane_with_e2e(0, 100);
        let mut slo = SloBurnRate::serve_e2e(100);
        assert!(slo.evaluate(&plane).is_none());
        assert!(plane.alerts().is_empty());
    }

    #[test]
    fn empty_windows_never_fire() {
        let plane = plane_with_e2e(0, 0);
        let mut slo = SloBurnRate::serve_e2e(100);
        assert!(slo.burn_rates(&plane).is_none());
        assert!(slo.evaluate(&plane).is_none());
    }

    #[test]
    fn cooldown_paces_a_sustained_burn() {
        let plane = plane_with_e2e(10, 0);
        let mut slo = SloBurnRate::serve_e2e(100);
        slo.cooldown_ns = u64::MAX; // fire at most once
        assert!(slo.evaluate(&plane).is_some());
        assert!(slo.evaluate(&plane).is_none(), "cooldown suppresses the repeat");
        assert_eq!(plane.alerts().len(), 1);
    }
}
