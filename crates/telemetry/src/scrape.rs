//! The scraper: samples every cell of a [`TelemetryPlane`] at a
//! configurable interval, deriving the cluster-level gauges that turn
//! raw counters into checkable health — budget ratio against the
//! paper's `2·scheduled_words_per_vector`, straggler λ, overlap
//! efficiency, and the serve queue state.

use crate::cell::CellSnapshot;
use crate::keys;
use crate::plane::{SloAlert, TelemetryPlane};
use crate::sync::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Scrape interval and the model inputs the derived gauges reconcile
/// against.
#[derive(Clone, Debug)]
pub struct ScrapeConfig {
    /// Sampling interval for [`Scraper::run_scoped`].
    pub interval: Duration,
    /// Per-rank scheduled exchange budget per served vector — pass
    /// `2 · scheduled_words_per_vector(n, q)` to get a live
    /// sent-words-vs-theory ratio; `None` disables the budget gauge.
    pub budget_words_per_vector: Option<u64>,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        ScrapeConfig { interval: Duration::from_millis(50), budget_words_per_vector: None }
    }
}

impl ScrapeConfig {
    /// Overrides the sampling interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the per-rank per-vector word budget (see the field docs).
    pub fn with_budget_words_per_vector(mut self, budget: u64) -> Self {
        self.budget_words_per_vector = Some(budget);
        self
    }
}

/// Cluster-level gauges derived from one sample.
#[derive(Clone, Debug)]
pub struct DerivedGauges {
    /// Words sent summed over all ranks and phases.
    pub total_words_sent: u64,
    /// Live straggler imbalance λ = max/mean of per-rank words sent;
    /// `None` until any rank has sent.
    pub straggler_lambda: Option<f64>,
    /// `total_words_sent / (ranks · vectors_done · budget)` — ≈ 1.0 when
    /// the run tracks the scheduled-exchange theory with the configured
    /// `2 · scheduled_words_per_vector` budget (each processor sends
    /// `scheduled_words_per_vector` in each of the two exchange phases);
    /// `None` without a configured budget or before any vector
    /// completed.
    pub budget_ratio: Option<f64>,
    /// Exchange nanoseconds hidden behind overlapped compute, summed
    /// over ranks (live counterpart of the PR-7 decomposition).
    pub hidden_comm_ns: u64,
    /// Exchange nanoseconds left exposed, summed over ranks.
    pub exposed_comm_ns: u64,
    /// `hidden / (hidden + exposed)`; `None` before any overlap ran.
    pub overlap_efficiency: Option<f64>,
    /// Requests admitted but not yet completed.
    pub queue_depth: u64,
    /// Current batch fill as a percentage of capacity.
    pub batch_occupancy_pct: u64,
    /// Chaos-serve retry attempts so far.
    pub retries: u64,
    /// Requests completed on the degraded fallback so far.
    pub degraded: u64,
}

/// One timestamped sample of the whole plane.
#[derive(Clone, Debug)]
pub struct ClusterSnapshot {
    /// Plane-clock sample time.
    pub t_ns: u64,
    /// Per-rank cell snapshots, rank order.
    pub ranks: Vec<CellSnapshot>,
    /// The serving driver's cell.
    pub serve: CellSnapshot,
    /// Cluster-level derived gauges.
    pub derived: DerivedGauges,
    /// All alerts raised up to this sample.
    pub alerts: Vec<SloAlert>,
}

/// A completed scrape: the sample series plus the config that produced
/// it — the payload behind the `symtensor-telemetry-v1` artifact.
#[derive(Clone, Debug)]
pub struct TelemetrySeries {
    /// Configured sampling interval, in nanoseconds.
    pub interval_ns: u64,
    /// The configured word budget, if any.
    pub budget_words_per_vector: Option<u64>,
    /// Samples in time order.
    pub samples: Vec<ClusterSnapshot>,
    /// The final alert log.
    pub alerts: Vec<SloAlert>,
}

impl TelemetrySeries {
    /// The most recent sample.
    pub fn last(&self) -> Option<&ClusterSnapshot> {
        self.samples.last()
    }
}

/// Samples a [`TelemetryPlane`] into a [`TelemetrySeries`].
pub struct Scraper {
    plane: Arc<TelemetryPlane>,
    cfg: ScrapeConfig,
    samples: Vec<ClusterSnapshot>,
}

impl Scraper {
    /// A scraper over `plane`.
    pub fn new(plane: Arc<TelemetryPlane>, cfg: ScrapeConfig) -> Self {
        Scraper { plane, cfg, samples: Vec::new() }
    }

    /// Takes one sample now and appends it to the series.
    pub fn sample(&mut self) -> &ClusterSnapshot {
        let snap = sample_plane(&self.plane, &self.cfg);
        self.samples.push(snap);
        // lint: allow-panic — designed invariant: pushed one line up.
        self.samples.last().expect("just pushed")
    }

    /// The samples taken so far.
    pub fn samples(&self) -> &[ClusterSnapshot] {
        &self.samples
    }

    /// Finishes the scrape.
    pub fn into_series(self) -> TelemetrySeries {
        TelemetrySeries {
            interval_ns: self.cfg.interval.as_nanos() as u64,
            budget_words_per_vector: self.cfg.budget_words_per_vector,
            alerts: self.plane.alerts(),
            samples: self.samples,
        }
    }

    /// Runs `work` on the calling thread while a background thread
    /// samples `plane` every `cfg.interval`, then takes one final sample
    /// after `work` returns (so the series always ends with the
    /// completed-run state). Returns `work`'s result and the series.
    pub fn run_scoped<R>(
        plane: Arc<TelemetryPlane>,
        cfg: ScrapeConfig,
        work: impl FnOnce() -> R,
    ) -> (R, TelemetrySeries) {
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let plane = plane.clone();
            let cfg = cfg.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut scraper = Scraper::new(plane, cfg);
                // ordering: Acquire — pairs with the Release stop store
                // so the final sample sees all pre-stop writes.
                while !stop.load(Ordering::Acquire) {
                    scraper.sample();
                    // Sleep in short slices so a finished run is not held
                    // hostage to a long scrape interval at join time.
                    let mut left = scraper.cfg.interval;
                    // ordering: Acquire — same stop handshake as above.
                    while !left.is_zero() && !stop.load(Ordering::Acquire) {
                        let chunk = left.min(Duration::from_millis(1));
                        std::thread::sleep(chunk);
                        left -= chunk;
                    }
                }
                scraper.samples
            })
        };
        let result = work();
        // ordering: Release — publishes work's effects before the stop
        // flag; the sampler's Acquire loads pair with it.
        stop.store(true, Ordering::Release);
        // lint: allow-panic — a crashed sampler loses the series; there
        // is no degraded result worth returning from a poisoned scrape.
        let mut samples = sampler.join().expect("sampler thread panicked");
        let mut scraper = Scraper::new(plane, cfg);
        scraper.samples = std::mem::take(&mut samples);
        scraper.sample();
        (result, scraper.into_series())
    }
}

/// Takes one sample of `plane` (free function so exposition tests can
/// sample without a [`Scraper`]).
pub fn sample_plane(plane: &TelemetryPlane, cfg: &ScrapeConfig) -> ClusterSnapshot {
    let t_ns = plane.now_ns();
    let ranks: Vec<CellSnapshot> =
        (0..plane.ranks()).map(|r| plane.rank_snapshot(r, t_ns)).collect();
    let serve = plane.serve_snapshot(t_ns);
    let derived = derive(&ranks, &serve, cfg);
    ClusterSnapshot { t_ns, ranks, serve, derived, alerts: plane.alerts() }
}

fn derive(ranks: &[CellSnapshot], serve: &CellSnapshot, cfg: &ScrapeConfig) -> DerivedGauges {
    let per_rank_sent: Vec<u64> = ranks.iter().map(|c| c.words_sent_total()).collect();
    let total_words_sent: u64 = per_rank_sent.iter().sum();
    let straggler_lambda = if total_words_sent > 0 && !ranks.is_empty() {
        let mean = total_words_sent as f64 / ranks.len() as f64;
        // lint: allow-panic — designed invariant: guarded by the
        // `!ranks.is_empty()` arm of the enclosing condition.
        Some(*per_rank_sent.iter().max().expect("non-empty") as f64 / mean)
    } else {
        None
    };
    let vectors_done = serve.gauge(keys::VECTORS_DONE).unwrap_or(0);
    let budget_ratio = match (cfg.budget_words_per_vector, vectors_done) {
        (Some(budget), v) if budget > 0 && v > 0 && !ranks.is_empty() => {
            Some(total_words_sent as f64 / (ranks.len() as u64 * v * budget) as f64)
        }
        _ => None,
    };
    let hidden_comm_ns: u64 = ranks.iter().filter_map(|c| c.gauge(keys::HIDDEN_NS)).sum();
    let exposed_comm_ns: u64 = ranks.iter().filter_map(|c| c.gauge(keys::EXPOSED_NS)).sum();
    let overlap_efficiency = (hidden_comm_ns + exposed_comm_ns > 0)
        .then(|| hidden_comm_ns as f64 / (hidden_comm_ns + exposed_comm_ns) as f64);
    DerivedGauges {
        total_words_sent,
        straggler_lambda,
        budget_ratio,
        hidden_comm_ns,
        exposed_comm_ns,
        overlap_efficiency,
        queue_depth: serve.gauge(keys::QUEUE_DEPTH).unwrap_or(0),
        batch_occupancy_pct: serve.gauge(keys::BATCH_OCCUPANCY_PCT).unwrap_or(0),
        retries: serve.gauge(keys::RETRIES).unwrap_or(0),
        degraded: serve.gauge(keys::DEGRADED).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_gauges_reconcile_counters_and_budget() {
        let plane = Arc::new(TelemetryPlane::new(3));
        let slot = plane.phase_slot("gather-x");
        plane.rank_cell(0).on_send(slot, 60);
        plane.rank_cell(1).on_send(slot, 30);
        plane.rank_cell(2).on_send(slot, 30);
        let vd = plane.gauge_slot(keys::VECTORS_DONE);
        plane.serve_cell().gauge_set(vd, 2);
        let cfg = ScrapeConfig::default().with_budget_words_per_vector(20);
        let snap = sample_plane(&plane, &cfg);
        assert_eq!(snap.derived.total_words_sent, 120);
        // λ = 60 / 40 = 1.5
        assert_eq!(snap.derived.straggler_lambda, Some(1.5));
        // 120 / (3 ranks · 2 vectors · 20 words) = 1.0: exactly on budget.
        assert_eq!(snap.derived.budget_ratio, Some(1.0));
    }

    #[test]
    fn overlap_efficiency_comes_from_rank_gauges() {
        let plane = Arc::new(TelemetryPlane::new(2));
        let hidden = plane.gauge_slot(keys::HIDDEN_NS);
        let exposed = plane.gauge_slot(keys::EXPOSED_NS);
        plane.rank_cell(0).gauge_add(hidden, 300);
        plane.rank_cell(1).gauge_add(hidden, 450);
        plane.rank_cell(1).gauge_add(exposed, 250);
        let snap = sample_plane(&plane, &ScrapeConfig::default());
        assert_eq!(snap.derived.hidden_comm_ns, 750);
        assert_eq!(snap.derived.exposed_comm_ns, 250);
        assert_eq!(snap.derived.overlap_efficiency, Some(0.75));
    }

    #[test]
    fn run_scoped_samples_during_and_after_the_work() {
        let plane = Arc::new(TelemetryPlane::new(1));
        let slot = plane.phase_slot("gather-x");
        let cfg = ScrapeConfig::default().with_interval(Duration::from_millis(1));
        let (result, series) = Scraper::run_scoped(plane.clone(), cfg, || {
            plane.rank_cell(0).on_send(slot, 7);
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(result, 42);
        assert!(series.samples.len() >= 2, "at least one in-flight sample plus the final one");
        let last = series.last().expect("final sample exists");
        assert_eq!(last.ranks[0].phase("gather-x").unwrap().words_sent, 7);
        // Samples are in time order.
        for pair in series.samples.windows(2) {
            assert!(pair[0].t_ns <= pair[1].t_ns);
        }
    }
}
