//! The shared telemetry plane: name registries, per-rank cells, and the
//! SLO alert log.

use crate::cell::TelemetryCell;
use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Phase slot 0: traffic recorded outside any `with_phase` scope. Also
/// the overflow slot when more distinct labels are registered than the
/// plane has capacity for.
pub const UNPHASED: &str = "(unphased)";

/// Interns `&'static str` names to dense slot indices. Registration is
/// rare (first time a label is seen — publishers cache the slot), so it
/// takes a mutex; resolution and enumeration are lock-free reads.
struct Registry {
    names: Vec<OnceLock<&'static str>>,
    count: AtomicUsize,
    register: Mutex<()>,
}

impl Registry {
    fn new(capacity: usize) -> Self {
        Registry {
            names: (0..capacity).map(|_| OnceLock::new()).collect(),
            count: AtomicUsize::new(0),
            register: Mutex::new(()),
        }
    }

    /// Slot for `name`, registering it on first sight. Returns slot 0
    /// when the registry is full — overflow traffic aggregates into the
    /// first slot rather than being dropped or panicking mid-run.
    fn resolve(&self, name: &'static str) -> usize {
        // ordering: Acquire — pairs with the Release count publish so
        // slots below the count are fully initialized.
        let n = self.count.load(Ordering::Acquire);
        for (i, slot) in self.names[..n].iter().enumerate() {
            if slot.get().map(|s| *s == name).unwrap_or(false) {
                return i;
            }
        }
        // lint: allow-panic — a registrar that panicked mid-insert
        // poisons the slot map beyond any consistent recovery.
        let _guard = self.register.lock().unwrap();
        // ordering: Acquire — re-check under the registration lock.
        let n = self.count.load(Ordering::Acquire);
        for (i, slot) in self.names[..n].iter().enumerate() {
            if slot.get().map(|s| *s == name).unwrap_or(false) {
                return i;
            }
        }
        if n == self.names.len() {
            return 0;
        }
        // lint: allow-panic — designed invariant: slots past the
        // published count are unclaimed while the registration lock is held.
        self.names[n].set(name).expect("slot past the published count is unclaimed");
        // ordering: Release — publishes the initialized slot before the
        // new count; pairs with the Acquire loads above.
        self.count.store(n + 1, Ordering::Release);
        n
    }

    /// The registered names, in slot order.
    fn names(&self) -> Vec<&'static str> {
        // ordering: Acquire — pairs with the Release count publish.
        let n = self.count.load(Ordering::Acquire);
        self.names[..n].iter().filter_map(|s| s.get().copied()).collect()
    }
}

/// Sizing and windowing knobs for a [`TelemetryPlane`].
#[derive(Clone, Debug)]
pub struct PlaneConfig {
    /// Number of rank cells.
    pub ranks: usize,
    /// Distinct phase labels the plane can track (plus [`UNPHASED`]).
    pub max_phases: usize,
    /// Distinct gauge names.
    pub max_gauges: usize,
    /// Distinct histogram names.
    pub max_hists: usize,
    /// Rolling-histogram slice width in nanoseconds.
    pub slice_ns: u64,
    /// Slices in the "short" window the burn-rate evaluator reads.
    pub short_slices: usize,
}

impl PlaneConfig {
    /// Defaults for `ranks` ranks: 16 phases, 32 gauges, 8 histograms,
    /// 100 ms slices, 2-slice (200 ms) short window.
    pub fn new(ranks: usize) -> Self {
        PlaneConfig {
            ranks,
            max_phases: 16,
            max_gauges: 32,
            max_hists: 8,
            slice_ns: 100_000_000,
            short_slices: 2,
        }
    }

    /// Overrides the histogram slice width.
    pub fn with_slice_ns(mut self, slice_ns: u64) -> Self {
        self.slice_ns = slice_ns;
        self
    }

    /// Overrides the short-window width (in slices).
    pub fn with_short_slices(mut self, short_slices: usize) -> Self {
        self.short_slices = short_slices;
        self
    }
}

/// A structured alert raised by the [`crate::SloBurnRate`] evaluator.
///
/// Alerts live in the plane's log (for the scraper and exposition) and
/// are *also* stamped into each rank's flight recorder the next time the
/// rank touches its communicator — so a post-mortem flight window shows
/// what the live plane saw before the failure.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    /// Sequential id assigned by [`TelemetryPlane::raise_alert`] — the
    /// same id flight-recorder `alert` records carry in their word field.
    pub id: u64,
    /// Plane-clock time the alert fired.
    pub t_ns: u64,
    /// Which SLO burned (e.g. `"serve:e2e_ns"`).
    pub slo: &'static str,
    /// The per-request latency budget.
    pub budget_ns: u64,
    /// The objective (e.g. 0.99 ⇒ a 1% error budget).
    pub objective: f64,
    /// Short-window burn rate at firing time (≥ the fast factor).
    pub short_burn: f64,
    /// Long-window burn rate at firing time (≥ 1).
    pub long_burn: f64,
    /// Short-window p99 at firing time, when the window was non-empty.
    pub short_p99_ns: Option<u64>,
}

/// The shared live-metrics plane: one [`TelemetryCell`] per rank plus
/// one for the serving driver, the name registries that map labels to
/// cell slots, and the alert log.
///
/// Clone the `Arc` freely: publishers (ranks, the serve loop) and
/// consumers (scraper, monitor) share one plane. The plane's clock is
/// its own creation instant; all `t_ns` values are nanoseconds since
/// then.
pub struct TelemetryPlane {
    start: Instant,
    cfg: PlaneConfig,
    phases: Registry,
    gauges: Registry,
    hists: Registry,
    cells: Vec<TelemetryCell>,
    serve: TelemetryCell,
    alerts: Mutex<Vec<SloAlert>>,
    alert_count: AtomicU64,
}

// Manual impl: the cells are walls of atomics whose derived output would
// be useless (and racy to format); identify the plane by shape instead.
impl std::fmt::Debug for TelemetryPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryPlane")
            .field("ranks", &self.cells.len())
            .field("cfg", &self.cfg)
            // ordering: Relaxed — diagnostic display read.
            .field("alerts", &self.alert_count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl TelemetryPlane {
    /// A plane for `ranks` ranks with default sizing.
    pub fn new(ranks: usize) -> Self {
        Self::with_config(PlaneConfig::new(ranks))
    }

    /// A plane with explicit sizing/windowing.
    pub fn with_config(cfg: PlaneConfig) -> Self {
        let phases = Registry::new(cfg.max_phases.max(1));
        phases.resolve(UNPHASED); // slot 0, also the overflow slot
        let cell = |cfg: &PlaneConfig| {
            TelemetryCell::new(cfg.max_phases.max(1), cfg.max_gauges, cfg.max_hists, cfg.slice_ns)
        };
        TelemetryPlane {
            // lint: clock-anchor — the plane's epoch; every t_ns is
            // measured against this one blessed clock read.
            start: Instant::now(),
            cells: (0..cfg.ranks).map(|_| cell(&cfg)).collect(),
            serve: cell(&cfg),
            phases,
            gauges: Registry::new(cfg.max_gauges),
            hists: Registry::new(cfg.max_hists),
            cfg,
            alerts: Mutex::new(Vec::new()),
            alert_count: AtomicU64::new(0),
        }
    }

    /// The plane's sizing/windowing configuration.
    pub fn config(&self) -> &PlaneConfig {
        &self.cfg
    }

    /// Number of rank cells.
    pub fn ranks(&self) -> usize {
        self.cells.len()
    }

    /// Nanoseconds since the plane was created (monotonic).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Rank `r`'s cell.
    #[inline]
    pub fn rank_cell(&self, r: usize) -> &TelemetryCell {
        &self.cells[r]
    }

    /// The serving driver's cell (queue state, request latencies).
    #[inline]
    pub fn serve_cell(&self) -> &TelemetryCell {
        &self.serve
    }

    /// Slot for phase `label` (interned on first sight; slot 0 =
    /// [`UNPHASED`] / overflow).
    pub fn phase_slot(&self, label: &'static str) -> usize {
        self.phases.resolve(label)
    }

    /// Slot for gauge `name`.
    pub fn gauge_slot(&self, name: &'static str) -> usize {
        self.gauges.resolve(name)
    }

    /// Slot for histogram `name`.
    pub fn hist_slot(&self, name: &'static str) -> usize {
        self.hists.resolve(name)
    }

    /// Registered phase labels, in slot order.
    pub fn phase_labels(&self) -> Vec<&'static str> {
        self.phases.names()
    }

    /// Appends `alert` to the log (assigning its sequential id) and
    /// publishes the new count for the ranks' lock-free polls. Returns
    /// the assigned id.
    pub fn raise_alert(&self, mut alert: SloAlert) -> u64 {
        // Recover the log on poison: alerts are append-only, so a
        // panicked appender leaves at worst a complete prefix.
        let mut log = self.alerts.lock().unwrap_or_else(|p| p.into_inner());
        alert.id = log.len() as u64;
        let id = alert.id;
        log.push(alert);
        // ordering: Release — publishes the pushed alert before the new
        // count; pollers Acquire-load the count, then lock to read.
        self.alert_count.store(log.len() as u64, Ordering::Release);
        id
    }

    /// Number of alerts raised so far. One relaxed load — this is the
    /// per-send poll ranks use to notice new alerts.
    #[inline]
    pub fn alert_count(&self) -> u64 {
        // ordering: Relaxed — a poll; the poller that sees a new count
        // takes the alerts mutex to read, which orders the contents.
        self.alert_count.load(Ordering::Relaxed)
    }

    /// Alerts with id ≥ `seen` (the ones a poller hasn't stamped yet).
    pub fn alerts_since(&self, seen: u64) -> Vec<SloAlert> {
        let log = self.alerts.lock().unwrap_or_else(|p| p.into_inner());
        log.iter().skip(seen as usize).cloned().collect()
    }

    /// The full alert log.
    pub fn alerts(&self) -> Vec<SloAlert> {
        self.alerts.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Decodes rank `r`'s cell at time `now_ns`.
    pub fn rank_snapshot(&self, r: usize, now_ns: u64) -> crate::CellSnapshot {
        self.cell_snapshot(&self.cells[r], now_ns)
    }

    /// Decodes the serve cell at time `now_ns`.
    pub fn serve_snapshot(&self, now_ns: u64) -> crate::CellSnapshot {
        self.cell_snapshot(&self.serve, now_ns)
    }

    fn cell_snapshot(&self, cell: &TelemetryCell, now_ns: u64) -> crate::CellSnapshot {
        cell.snapshot(
            &self.phases.names(),
            &self.gauges.names(),
            &self.hists.names(),
            now_ns,
            self.cfg.short_slices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_slot_zero_is_unphased() {
        let plane = TelemetryPlane::new(2);
        assert_eq!(plane.phase_slot(UNPHASED), 0);
        let a = plane.phase_slot("gather-x");
        let b = plane.phase_slot("reduce-y");
        assert_eq!(plane.phase_slot("gather-x"), a);
        assert_ne!(a, b);
        assert_eq!(plane.phase_labels()[0], UNPHASED);
    }

    #[test]
    fn registry_overflow_degrades_to_slot_zero() {
        let mut cfg = PlaneConfig::new(1);
        cfg.max_phases = 2; // UNPHASED + one
        let plane = TelemetryPlane::with_config(cfg);
        let a = plane.phase_slot("a");
        assert_eq!(a, 1);
        assert_eq!(plane.phase_slot("b"), 0, "overflow aggregates into slot 0");
        assert_eq!(plane.phase_slot("a"), 1, "existing labels keep their slot");
    }

    #[test]
    fn counters_and_snapshot_reconcile() {
        let plane = TelemetryPlane::new(2);
        let slot = plane.phase_slot("gather-x");
        plane.rank_cell(0).on_send(slot, 10);
        plane.rank_cell(0).on_send(slot, 5);
        plane.rank_cell(1).on_recv(slot, 15);
        let s0 = plane.rank_snapshot(0, plane.now_ns());
        let s1 = plane.rank_snapshot(1, plane.now_ns());
        let g = s0.phase("gather-x").unwrap();
        assert_eq!((g.words_sent, g.msgs_sent), (15, 2));
        assert_eq!(s1.phase("gather-x").unwrap().words_recv, 15);
        assert_eq!(s0.words_sent_total(), s1.words_recv_total());
    }

    #[test]
    fn alerts_assign_sequential_ids_and_publish_counts() {
        let plane = TelemetryPlane::new(1);
        assert_eq!(plane.alert_count(), 0);
        let alert = SloAlert {
            id: 999, // overwritten
            t_ns: 1,
            slo: "serve:e2e_ns",
            budget_ns: 100,
            objective: 0.99,
            short_burn: 7.0,
            long_burn: 2.0,
            short_p99_ns: Some(500),
        };
        assert_eq!(plane.raise_alert(alert.clone()), 0);
        assert_eq!(plane.raise_alert(alert), 1);
        assert_eq!(plane.alert_count(), 2);
        assert_eq!(plane.alerts_since(1).len(), 1);
        assert_eq!(plane.alerts_since(1)[0].id, 1);
    }

    #[test]
    fn snapshot_reads_race_free_under_a_concurrent_writer() {
        // A writer hammers gauge sets while readers snapshot: the seqlock
        // must keep every observed value one of the written ones (no torn
        // or half-reset state), and the writer must never deadlock.
        let plane = std::sync::Arc::new(TelemetryPlane::new(1));
        let slot = plane.gauge_slot("g");
        let writer = {
            let plane = plane.clone();
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    plane.rank_cell(0).gauge_set(slot, i);
                }
            })
        };
        for _ in 0..1_000 {
            let snap = plane.rank_snapshot(0, plane.now_ns());
            assert!(snap.gauge("g").unwrap() < 50_000);
        }
        writer.join().unwrap();
        assert_eq!(plane.rank_snapshot(0, plane.now_ns()).gauge("g"), Some(49_999));
    }
}
