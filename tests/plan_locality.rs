//! Cache-locality witness for the compiled plan's `(i, j, k)`-sorted
//! arena: replaying the plan's block schedule through the fully
//! associative LRU simulator, the sorted order incurs no more misses than
//! a shuffled schedule over the same blocks.
//!
//! The model matches the kernels' actual touch pattern: each block streams
//! its packed tensor words once (compulsory traffic, identical in any
//! order) and touches the three `b`-word vector row-slot regions named by
//! its precomputed slots, in both the `x` and `y` slabs. Sorted blocks
//! share slots with their neighbours (consecutive blocks mostly keep `i`
//! and step `j`/`k`), so the vector working set stays hot; a shuffled
//! schedule jumps across the slab.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cachesim::LruCache;
use symtensor_core::generate::random_symmetric;
use symtensor_parallel::blocks::OwnedBlocks;
use symtensor_parallel::{RankPlan, TetraPartition};
use symtensor_steiner::spherical;

/// Replays the block schedule `order` through an LRU cache and returns
/// `(vector_misses, tensor_misses)`.
///
/// Address space: `x` slab at 0, `y` slab behind it, the packed arena
/// behind both — exactly the plan's three live data structures.
fn replay(plan: &RankPlan, order: &[usize], capacity_words: usize, line: usize) -> (u64, u64) {
    let b = plan.block_size() as u64;
    let stride = (plan.row_block_count() * plan.block_size()) as u64;
    let arena_base = 2 * stride;
    let mut cache = LruCache::new(capacity_words, line);
    let mut vector_misses = 0;
    let mut tensor_misses = 0;
    for &bi in order {
        let blk = plan.blocks()[bi];
        let before = cache.stats().misses;
        for slab_base in [0, stride] {
            for slot in blk.slots {
                cache.access_range(slab_base + slot as u64 * b, b);
            }
        }
        vector_misses += cache.stats().misses - before;
        let before = cache.stats().misses;
        cache.access_range(arena_base + blk.offset as u64, blk.len as u64);
        tensor_misses += cache.stats().misses - before;
    }
    (vector_misses, tensor_misses)
}

/// Deterministic Fisher–Yates with a small LCG (the shuffle itself is not
/// under test; it just needs to be reproducible and order-destroying).
fn shuffled(len: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    let mut state = seed | 1;
    for i in (1..len).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

#[test]
fn sorted_arena_order_is_no_worse_than_shuffled_in_the_lru_model() {
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(777);
    let tensor = random_symmetric(n, &mut rng);

    for rank in [0, part.num_procs() - 1] {
        let owned = OwnedBlocks::extract(&tensor, &part, rank);
        let plan = RankPlan::build(&part, &owned, rank);
        let n_blocks = plan.block_count();
        assert!(n_blocks > 2, "need a non-trivial schedule");
        let sorted: Vec<usize> = (0..n_blocks).collect();

        // A cache big enough to hold a few blocks' working sets but far
        // smaller than slab + arena, so schedule order matters.
        let b = plan.block_size();
        let capacity_words = 8 * b * b;
        let line = 8;

        let (v_sorted, t_sorted) = replay(&plan, &sorted, capacity_words, line);
        let mut worse_count = 0;
        for seed in [1u64, 2, 3, 4, 5] {
            let order = shuffled(n_blocks, seed);
            let (v_shuf, t_shuf) = replay(&plan, &order, capacity_words, line);
            assert!(
                v_sorted <= v_shuf,
                "rank {rank} seed {seed}: sorted vector misses {v_sorted} > shuffled {v_shuf}"
            );
            assert!(
                v_sorted + t_sorted <= v_shuf + t_shuf,
                "rank {rank} seed {seed}: sorted total misses exceed shuffled"
            );
            if v_sorted < v_shuf {
                worse_count += 1;
            }
        }
        // The sorted order should be strictly better against at least one
        // shuffle — otherwise the cache parameters make the test vacuous.
        assert!(worse_count > 0, "rank {rank}: locality advantage not observable");
    }
}

#[test]
fn tensor_words_are_compulsory_in_any_order() {
    // Every packed tensor word is touched exactly once per pass, so with
    // line size 1 the tensor miss count is order-invariant — the entire
    // schedule effect lives in the vector traffic.
    let n = 30;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(778);
    let tensor = random_symmetric(n, &mut rng);
    let owned = OwnedBlocks::extract(&tensor, &part, 0);
    let plan = RankPlan::build(&part, &owned, 0);
    let n_blocks = plan.block_count();
    let capacity_words = 4 * plan.block_size() * plan.block_size();

    let sorted: Vec<usize> = (0..n_blocks).collect();
    let (_, t_sorted) = replay(&plan, &sorted, capacity_words, 1);
    let (_, t_shuf) = replay(&plan, &shuffled(n_blocks, 9), capacity_words, 1);
    let arena_words: u64 = plan.blocks().iter().map(|b| b.len as u64).sum();
    assert_eq!(t_sorted, arena_words);
    assert_eq!(t_shuf, arena_words);
}
