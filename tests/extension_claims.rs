//! Acceptance tests for the extensions beyond the paper's headline results:
//! each encodes a property claimed in DESIGN.md / EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_parallel::partition::PartitionError;
use symtensor_parallel::{parallel_sttsv, Mode, TetraPartition};
use symtensor_steiner::{double_sqs, spherical, sqs8};

/// Doubled quadruple systems are valid Steiner systems but fail the
/// partition's extra divisibility requirement `λ₂ | r(r−1)` — mirroring the
/// paper's point that partition-compatible families are special.
#[test]
fn doubled_sqs_cannot_drive_a_tetrahedral_partition() {
    let sqs16 = double_sqs(&sqs8());
    sqs16.verify().unwrap();
    // λ₂ = (16−2)/(4−2) = 7 does not divide r(r−1) = 12.
    let err = TetraPartition::new(sqs16, 16 * 4).unwrap_err();
    assert!(matches!(err, PartitionError::NonCentralCountFractional { .. }), "{err}");
}

/// The d-dimensional lower bound at d = 3 must be exactly Theorem 5.2.
#[test]
fn d_dimensional_bound_specializes_to_theorem_52() {
    use symtensor_core::dsym::lower_bound_words_d;
    use symtensor_parallel::bounds::lower_bound_words;
    for (n, p) in [(60usize, 10usize), (240, 130), (1000, 350)] {
        let general = lower_bound_words_d(n, 3, p);
        let dedicated = lower_bound_words(n, p);
        assert!((general - dedicated).abs() < 1e-9, "n={n} P={p}");
    }
}

/// Padded and sparse All-to-All modes differ only in zero padding; since
/// both unpack contributions in ascending peer order, the computed y is
/// bitwise identical.
#[test]
fn padded_and_sparse_all_to_all_agree_bitwise() {
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(500);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
    let padded = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllPadded);
    let sparse = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllSparse);
    assert_eq!(padded.y, sparse.y);
    // …but the padded mode moves strictly more words.
    assert!(padded.report.bandwidth_cost() > sparse.report.bandwidth_cost());
}

/// The geometric extremal structure behind the partition: the tetrahedral
/// blocks TB₃(R_p) of a real Steiner system push Lemma 4.2 close to
/// equality (reuse ratio → 1 as |R| grows).
#[test]
fn steiner_blocks_are_near_extremal_for_lemma_42() {
    use symtensor_parallel::geometry::{symmetric_inequality_sides, PointSet};
    for q in [3u64, 5, 7] {
        let system = spherical(q);
        let r_set = &system.blocks()[0];
        let mut v = PointSet::new();
        for a in 0..r_set.len() {
            for b in 0..a {
                for c in 0..b {
                    v.insert((r_set[a] as i64, r_set[b] as i64, r_set[c] as i64));
                }
            }
        }
        let (lhs, rhs) = symmetric_inequality_sides(&v);
        assert!(lhs <= rhs);
        // 6·C(q+1,3) vs (q+1)³: ratio = q(q−1)/(q+1)² → 1.
        let ratio = lhs as f64 / rhs as f64;
        let expect = (q * (q - 1)) as f64 / ((q + 1) * (q + 1)) as f64;
        assert!((ratio - expect).abs() < 1e-12, "q={q}");
    }
}

/// The blocked sequential kernel and the distributed kernels implement the
/// same computation as Algorithm 4 with identical model work.
#[test]
fn all_kernel_families_agree_on_one_instance() {
    use symtensor_core::seq::{sttsv_sym, sttsv_sym_blocked};
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(501);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| 0.3 - (i as f64 * 0.05).cos()).collect();
    let (y_row, ops_row) = sttsv_sym(&tensor, &x);
    let (y_blk, ops_blk) = sttsv_sym_blocked(&tensor, &x, part.block_size());
    let run = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    assert_eq!(ops_row, ops_blk);
    let total_par: u64 = run.ternary_per_rank.iter().sum();
    assert_eq!(total_par, ops_row.ternary_mults);
    for i in 0..n {
        assert!((y_row[i] - y_blk[i]).abs() < 1e-11 * (1.0 + y_row[i].abs()));
        assert!((y_row[i] - run.y[i]).abs() < 1e-10 * (1.0 + y_row[i].abs()));
    }
}
