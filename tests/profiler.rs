//! PR 4 acceptance: the profiling layer — virtual-clock replay under the
//! α-β-γ model, critical-path extraction, latency histograms, and their
//! reconciliation with the paper's closed-form schedule costs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_mpsim::CommEvent;
use symtensor_obs::critical::{CriticalPath, StragglerReport};
use symtensor_obs::replay::{replay, replay_with_drift, AlphaBetaModel};
use symtensor_obs::ProfileHistograms;
use symtensor_parallel::{bounds, parallel_sttsv_traced, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn traced_run(q: usize, mode: Mode) -> (Vec<f64>, Vec<Vec<CommEvent>>, usize) {
    let n = (q * q + 1) * q * (q + 1);
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(99 + q as u64);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    let (run, traces) = parallel_sttsv_traced(&tensor, &part, &x, mode);
    (run.y, traces, n)
}

/// The headline acceptance property: under the pure-bandwidth model
/// (α=0, β=1, γ=0) the replayed makespan of the scheduled algorithm
/// reconciles *exactly* (±0 words) with twice the closed-form per-vector
/// word count `scheduled_words_per_vector` — the factor 2 covers the
/// gather-x and reduce-y phases, each of which moves exactly W words on
/// every rank's critical chain.
#[test]
fn scheduled_makespan_reconciles_with_closed_form() {
    for q in [2usize, 3] {
        let (_, traces, n) = traced_run(q, Mode::Scheduled);
        let rep = replay(&traces, AlphaBetaModel::bandwidth_only()).unwrap();
        let w2 = 2 * bounds::scheduled_words_per_vector(n, q);
        // Per-rank send busy time under β=1 is exactly the words sent.
        assert_eq!(rep.max_send_busy_ns(), w2 as f64, "q={q}: max send-busy must equal 2·W_sched");
        // And the full happens-before replay telescopes to the same number:
        // no rank ever waits long enough to stretch the chain past 2W.
        assert_eq!(rep.makespan_ns, w2 as f64, "q={q}: modeled makespan must equal 2·W_sched");
        // The critical path explains the whole makespan.
        let cp = CriticalPath::extract(&rep);
        assert_eq!(cp.length_ns(), rep.makespan_ns);
    }
}

/// Satellite (c), part 1: with α=β=0 and γ=1 communication is free, so the
/// replayed makespan must equal the maximum per-rank measured compute time
/// — each path contains at most one rank's compute span.
#[test]
fn compute_only_makespan_is_max_rank_compute() {
    for q in [2usize, 3] {
        for mode in [Mode::Scheduled, Mode::AllToAllPadded] {
            let (_, traces, _) = traced_run(q, mode);
            let rep = replay(&traces, AlphaBetaModel::compute_only()).unwrap();
            let max_compute: f64 = rep.ranks.iter().map(|r| r.compute_ns).fold(0.0, f64::max);
            assert_eq!(
                rep.makespan_ns, max_compute,
                "q={q} {mode:?}: compute-only makespan must be the slowest rank's compute"
            );
        }
    }
}

/// Satellite (c), part 2: for any model, the critical-path length is
/// sandwiched between the trivial lower bound (the heaviest single rank's
/// busy time, since that rank's ops form a chain) and the sum of all event
/// weights (a path visits each op at most once).
#[test]
fn critical_path_respects_weight_bounds() {
    let model = AlphaBetaModel { alpha: 3.0, beta: 0.5, gamma: 1.0, link_ns: 0.0 };
    for q in [2usize, 3] {
        let (_, traces, _) = traced_run(q, Mode::Scheduled);
        let rep = replay(&traces, model).unwrap();
        let cp = CriticalPath::extract(&rep);
        let per_rank_busy =
            rep.ranks.iter().map(|r| r.compute_ns + r.send_busy_ns).fold(0.0, f64::max);
        assert!(
            cp.length_ns() >= per_rank_busy,
            "q={q}: path {} < busiest rank {per_rank_busy}",
            cp.length_ns()
        );
        assert!(
            cp.length_ns() <= rep.total_weight_ns() + 1e-9,
            "q={q}: path {} > total weight {}",
            cp.length_ns(),
            rep.total_weight_ns()
        );
        // Makespan equals the path length by construction, and every step's
        // contribution is nonnegative.
        assert_eq!(cp.length_ns(), rep.makespan_ns);
        assert!(cp.steps.iter().all(|s| s.contribution >= 0.0));
    }
}

/// The traced parallel result stays numerically identical to the serial
/// kernel — profiling is observation, not perturbation.
#[test]
fn traced_run_matches_serial() {
    let q = 2usize;
    let n = (q * q + 1) * q * (q + 1);
    let mut rng = StdRng::seed_from_u64(99 + q as u64);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).sin()).collect();
    let (serial, _) = symtensor_core::sttsv_sym(&tensor, &x);
    let (y, _, _) = traced_run(q, Mode::Scheduled);
    for (a, b) in y.iter().zip(serial.iter()) {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0));
    }
}

/// Latency histograms built from a real traced run: every send is matched,
/// recv-wait and round-step histograms are populated, and quantiles are
/// ordered.
#[test]
fn profile_histograms_from_scheduled_run() {
    let (_, traces, _) = traced_run(3, Mode::Scheduled);
    let h = ProfileHistograms::from_traces(&traces);
    assert!(h.message_words.count > 0);
    assert_eq!(h.recv_wait_ns.count, h.message_words.count);
    assert!(h.round_step_ns.count > 0);
    for hist in [&h.round_step_ns, &h.recv_wait_ns, &h.message_words] {
        assert!(hist.p50() <= hist.p90());
        assert!(hist.p90() <= hist.p99());
        assert!(hist.p99() <= hist.max);
    }
    // Merging a histogram set with itself doubles counts, keeps extrema.
    let mut doubled = ProfileHistograms::default();
    doubled.merge(&h);
    doubled.merge(&h);
    assert_eq!(doubled.message_words.count, 2 * h.message_words.count);
    assert_eq!(doubled.message_words.max, h.message_words.max);
}

/// Drift + straggler reports render without panicking and carry sane data
/// for a q=3 scheduled run.
#[test]
fn drift_and_straggler_reports() {
    let (_, traces, _) = traced_run(3, Mode::Scheduled);
    let (rep, drift) = replay_with_drift(&traces, AlphaBetaModel::bandwidth_only()).unwrap();
    assert!(rep.makespan_ns > 0.0);
    assert!(!drift.is_empty());
    for d in &drift {
        assert!(d.measured_ns > 0.0, "phase {} has no measured time", d.phase);
    }
    let spans = symtensor_obs::spans(&traces);
    let stragglers = StragglerReport::from_spans(&spans, traces.len(), 3);
    assert!(!stragglers.phases.is_empty());
    for p in &stragglers.phases {
        assert!(p.lambda >= 1.0, "λ = max/mean must be ≥ 1, got {}", p.lambda);
    }
    let rendered = stragglers.render();
    assert!(rendered.contains("λ"));
    let table = CriticalPath::extract(&rep).render_attribution();
    assert!(table.contains("rank"));
}
