//! Tracing under failure: a rank panics mid-exchange, the surviving ranks
//! fail fast, and the runtime's abort attribution plus every rank's
//! flight-recorder window must assemble into a valid post-mortem dump.
//!
//! The dump is always written to `target/test-artifacts/` — on a CI test
//! failure that directory is uploaded, so the artifacts these tests leave
//! behind double as the debugging evidence for whatever else broke.

use symtensor_mpsim::Universe;
use symtensor_obs::json::Value;
use symtensor_obs::{postmortem_json, reconcile_postmortem, validate, ArtifactKind};

/// A 3-rank ring exchange in phase `gather-x`, round 2, where rank 1
/// panics after sending but before receiving — its inbound message is in
/// flight when the abort trips, exactly the mid-exchange wreckage a
/// post-mortem has to make sense of.
fn crash_run() -> Box<symtensor_mpsim::RankFailure> {
    Universe::new(3)
        .try_run_traced(|comm| {
            let p = comm.rank();
            comm.with_phase("gather-x", || {
                comm.annotate_round(2);
                comm.send((p + 1) % 3, 0, vec![1.0; 6]);
                if p == 1 {
                    panic!("injected mid-exchange failure");
                }
                let _ = comm.recv((p + 2) % 3, 0);
                comm.clear_round();
            });
        })
        .expect_err("rank 1 panics; the run must fail")
}

fn artifact_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/test-artifacts");
    std::fs::create_dir_all(&dir).expect("can create target/test-artifacts");
    dir
}

#[test]
fn rank_panic_produces_a_postmortem_dump() {
    let failure = crash_run();
    assert_eq!(failure.rank, 1);
    assert_eq!(failure.phase, Some("gather-x"));
    assert_eq!(failure.round, Some(2));
    assert!(failure.message.contains("injected mid-exchange failure"));

    let dump = postmortem_json(&failure);
    let path = artifact_dir().join("postmortem_ring.json");
    std::fs::write(&path, dump.to_string_pretty()).expect("can write the dump");

    // The written artifact round-trips through the shared schema validator.
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = symtensor_obs::json::parse(&text).expect("dump is valid JSON");
    assert_eq!(validate(&doc), Ok(ArtifactKind::Postmortem));

    // The dump names the failing rank and its last phase/round.
    assert_eq!(doc.get("failing_rank").and_then(Value::as_u64), Some(1));
    assert_eq!(doc.get("phase").and_then(Value::as_str), Some("gather-x"));
    assert_eq!(doc.get("round").and_then(Value::as_u64), Some(2));
    assert!(doc
        .get("message")
        .and_then(Value::as_str)
        .unwrap()
        .contains("injected mid-exchange failure"));
}

#[test]
fn postmortem_chrome_trace_is_valid_and_monotone() {
    let failure = crash_run();
    let dump = postmortem_json(&failure);
    let chrome = dump.get("chrome").expect("dump embeds a chrome trace");
    assert_eq!(validate(chrome), Ok(ArtifactKind::ChromeTrace));

    let events = chrome.get("traceEvents").unwrap().as_array().unwrap();
    // Per-track timestamps are monotone (the sort contract every Chrome
    // consumer in this workspace relies on).
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for e in events {
        if e.get("ph").and_then(Value::as_str) == Some("M") {
            continue;
        }
        let tid = e.get("tid").and_then(Value::as_u64).unwrap();
        let ts = match e.get("ts").unwrap() {
            Value::Number(ts) => *ts,
            other => panic!("non-numeric ts {other:?}"),
        };
        if let Some(prev) = last_ts.get(&tid) {
            assert!(ts >= *prev, "track {tid}: ts went backwards ({prev} -> {ts})");
        }
        last_ts.insert(tid, ts);
    }

    // The failing rank's track is flagged, it carries a panic instant, and
    // the phase it died inside is an unterminated span.
    let failed_track = events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                .is_some_and(|n| n.contains("rank 1") && n.contains("FAILED"))
    });
    assert!(failed_track, "rank 1's thread_name must be flagged FAILED");
    assert!(events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("panic")
        && e.get("tid").and_then(Value::as_u64) == Some(1)));
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("gather-x")
                && e.get("tid").and_then(Value::as_u64) == Some(1)
                && matches!(
                    e.get("args").and_then(|a| a.get("unterminated")),
                    Some(Value::Bool(true))
                )
        }),
        "the phase rank 1 died inside must be an unterminated span"
    );
}

#[test]
fn surviving_ranks_words_reconcile_with_the_comm_matrix() {
    let failure = crash_run();
    // Each rank sent its 6 words before the abort; rank 1's inbound
    // message was never received. The reconciliation must hold send-side
    // and recv-side marginals separately (the every-send-is-received
    // invariant is broken by design in an aborted run).
    reconcile_postmortem(&failure).expect("recorded words reconcile with the comm matrix");
    for (p, snap) in failure.flight.iter().enumerate() {
        assert_eq!(snap.words_sent(), 6, "rank {p} recorded its send");
    }
}
