//! Every JSON artifact family the workspace emits must pass the one shared
//! validator ([`symtensor_obs::validate`]) and come back as the expected
//! kind. The generators here are the real ones — the same code paths the
//! CLI binaries and the crash machinery use — so a shape drift in any
//! emitter fails this test before it breaks a downstream consumer.

use std::sync::Arc;
use symtensor_mpsim::Universe;
use symtensor_obs::json::{self, Value};
use symtensor_obs::{
    chrome_from_flight, chrome_trace, flight_json, postmortem_json, telemetry_json, validate,
    ArtifactKind, BenchKey, BenchRecord, MetricsRegistry, RegressionReport, RunObservation,
};
use symtensor_telemetry::{ScrapeConfig, Scraper, TelemetryPlane};

/// One tiny traced run shared by the generators below.
fn traced_run() -> (
    symtensor_mpsim::cost::CostReport,
    Vec<Vec<symtensor_mpsim::cost::CommEvent>>,
    Vec<symtensor_mpsim::FlightSnapshot>,
) {
    let (_, report, traces, flight) = Universe::new(2)
        .try_run_traced(|comm| {
            comm.with_phase("swap", || comm.exchange(1 - comm.rank(), 0, vec![0.0; 4]).unwrap())
        })
        .expect("clean run");
    (report, traces, flight)
}

fn bench_records(scale: f64) -> Vec<BenchRecord> {
    ["flat_slab", "blocked"]
        .iter()
        .map(|kernel| BenchRecord {
            key: BenchKey { kernel: kernel.to_string(), n: 128, q: Some(2) },
            ns_per_iter: 1000.0 * scale,
        })
        .collect()
}

#[test]
fn every_artifact_family_passes_the_shared_validator() {
    let (report, traces, flight) = traced_run();

    // 1. Bare metrics registry (the `--metrics` payload's inner document).
    let metrics = MetricsRegistry::new();
    metrics.record_run(&report, &traces);
    assert_eq!(validate(&metrics.to_json()), Ok(ArtifactKind::Metrics));

    // 2. The CLI's per-label metrics bundle, exactly as `ObsSink` writes it.
    let obs = RunObservation::new(report.clone(), traces.clone());
    let bundle = Value::object().with(
        "swap run",
        Value::object()
            .with("metrics", obs.metrics().to_json())
            .with("comm_matrix", obs.comm_matrix().to_json())
            .with("occupancy", obs.occupancy().to_json()),
    );
    assert_eq!(validate(&bundle), Ok(ArtifactKind::Metrics));

    // 3. Chrome traces — from trace events and rebuilt from flight records.
    assert_eq!(validate(&chrome_trace(&traces)), Ok(ArtifactKind::ChromeTrace));
    assert_eq!(validate(&chrome_from_flight(&flight, None)), Ok(ArtifactKind::ChromeTrace));

    // 4. Perf-regression diff, from a real evaluate.
    let diff = RegressionReport::evaluate(&bench_records(1.0), &bench_records(1.3), 0.15);
    assert!(diff.regressed());
    assert_eq!(validate(&diff.to_json()), Ok(ArtifactKind::RegressDiff));

    // 5. Flight window.
    assert_eq!(validate(&flight_json(&flight)), Ok(ArtifactKind::Flight));

    // 6. Post-mortem dump, from a real crash.
    let failure = Universe::new(2)
        .try_run_traced(|comm| {
            comm.with_phase("swap", || {
                comm.send(1 - comm.rank(), 0, vec![0.0; 4]);
                if comm.rank() == 0 {
                    panic!("schema-test crash");
                }
                let _ = comm.recv(1 - comm.rank(), 0);
            })
        })
        .expect_err("rank 0 panics");
    assert_eq!(validate(&postmortem_json(&failure)), Ok(ArtifactKind::Postmortem));

    // 7. Telemetry series, scraped from a real telemetered universe run
    //    and round-tripped through the text form.
    let plane = Arc::new(TelemetryPlane::new(2));
    let mut scraper =
        Scraper::new(plane.clone(), ScrapeConfig::default().with_budget_words_per_vector(4));
    Universe::new(2).with_telemetry(plane).run(|comm| {
        comm.with_phase("swap", || comm.exchange(1 - comm.rank(), 0, vec![0.0; 4]).unwrap())
    });
    scraper.sample();
    let doc = telemetry_json(&scraper.into_series());
    assert_eq!(validate(&doc), Ok(ArtifactKind::Telemetry));
    let reparsed = json::parse(&doc.to_string_pretty()).expect("telemetry text parses back");
    assert_eq!(validate(&reparsed), Ok(ArtifactKind::Telemetry));
}

/// The committed bench snapshots in the repo root are themselves valid
/// artifacts — the perf gate reads them, so they must stay parseable by
/// the shared validator too.
#[test]
fn committed_bench_snapshots_validate() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut seen = 0;
    for entry in std::fs::read_dir(&root).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{name}: invalid JSON: {e}"));
        assert_eq!(validate(&doc), Ok(ArtifactKind::Bench), "{name} failed validation");
        seen += 1;
    }
    assert!(seen > 0, "no BENCH_*.json snapshots found at the repo root");
}

/// The validator rejects close-but-wrong documents with an error naming
/// the offending field — the property CI relies on to triage artifacts.
#[test]
fn validator_errors_name_the_offending_field() {
    let (_, _, flight) = traced_run();

    // A flight dump whose events lost their timestamps.
    let mut doc = flight_json(&flight);
    if let Value::Object(fields) = &mut doc {
        for (key, v) in fields.iter_mut() {
            if key == "ranks" {
                *v = json::parse(r#"[{"rank": 0, "words_sent": 0, "words_recv": 0}]"#).unwrap();
            }
        }
    }
    let err = validate(&doc).unwrap_err();
    assert!(err.contains("overhead"), "got: {err}");

    // An unknown artifact version must be rejected, not guessed at.
    let doc = json::parse(r#"{"version": "symtensor-postmortem-v99"}"#).unwrap();
    assert!(validate(&doc).unwrap_err().contains("version"));
}
