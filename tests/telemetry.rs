//! Telemetry-plane acceptance tests: the live metrics plane must be
//! invisible to the numerics (bit-identical outputs and cost reports
//! with telemetry on and off), its per-phase word gauges must reconcile
//! ±0 with the final `CostReport` comm matrix, the SLO burn-rate
//! evaluator must fire under a breached budget and land in the
//! post-mortem flight window, and the Prometheus exposition must match
//! its golden file byte-for-byte.

use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use symtensor_core::generate::random_symmetric;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{FaultPlan, FlightKind};
use symtensor_parallel::{
    bounds, parallel_sttsv_serve, parallel_sttsv_serve_chaos_with, parallel_sttsv_serve_with,
    ChaosPolicy, Mode, ServeRequest, TetraPartition,
};
use symtensor_steiner::spherical;
use symtensor_telemetry::{
    keys, prometheus_text, sample_plane, ClusterSnapshot, PlaneConfig, ScrapeConfig, SloBurnRate,
    TelemetryPlane,
};

fn setup(q: u64) -> (SymTensor3, TetraPartition) {
    let qs = q as usize;
    let n = (qs * qs + 1) * qs * (qs + 1);
    let part = TetraPartition::new(spherical(q), n).unwrap();
    let tensor = random_symmetric(n, &mut StdRng::seed_from_u64(17));
    (tensor, part)
}

fn requests(n: usize, count: usize) -> Vec<ServeRequest> {
    (0..count)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + 3 * v) % 11) as f64 - 4.0).collect();
            ServeRequest::new(v as u64, x)
        })
        .collect()
}

/// Telemetry publication must never perturb the computation: the served
/// outputs are bit-identical and the comm counters equal with the plane
/// attached and detached, for both spherical layouts.
#[test]
fn serve_outputs_are_bit_identical_with_telemetry_on_and_off() {
    for q in [2u64, 3] {
        let (tensor, part) = setup(q);
        let reqs = requests(part.dim(), 6);
        let base = parallel_sttsv_serve(&tensor, &part, &reqs, Mode::Scheduled, 1, 2)
            .expect("baseline serve");
        let plane = Arc::new(TelemetryPlane::new(part.num_procs()));
        let run =
            parallel_sttsv_serve_with(&tensor, &part, &reqs, Mode::Scheduled, 1, 2, Some(&plane))
                .expect("telemetered serve");
        assert_eq!(base.ys.len(), run.ys.len());
        for (a, b) in base.ys.iter().zip(&run.ys) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "telemetry perturbed an output (q={q})");
            }
        }
        assert_eq!(base.report, run.report, "telemetry perturbed the comm counters (q={q})");
    }
}

/// The live per-rank per-phase word/message gauges, summed over phases,
/// must reconcile ±0 with the final `CostReport` comm matrix — the
/// scraper sees exactly what the cost model counted, for q ∈ {2, 3}.
#[test]
fn live_word_gauges_reconcile_with_the_final_cost_report() {
    for q in [2u64, 3] {
        let (tensor, part) = setup(q);
        let reqs = requests(part.dim(), 6);
        let plane = Arc::new(TelemetryPlane::new(part.num_procs()));
        let run =
            parallel_sttsv_serve_with(&tensor, &part, &reqs, Mode::Scheduled, 1, 3, Some(&plane))
                .expect("telemetered serve");
        let budget = 2 * bounds::scheduled_words_per_vector(part.dim(), q as usize) as u64;
        let cfg = ScrapeConfig::default().with_budget_words_per_vector(budget);
        let snap = sample_plane(&plane, &cfg);
        assert_eq!(snap.ranks.len(), run.report.per_rank.len());
        for (r, cost) in run.report.per_rank.iter().enumerate() {
            let cell = &snap.ranks[r];
            assert_eq!(cell.words_sent_total(), cost.words_sent, "rank {r} words_sent (q={q})");
            assert_eq!(cell.words_recv_total(), cost.words_recv, "rank {r} words_recv (q={q})");
            let msgs_sent: u64 = cell.phases.iter().map(|p| p.msgs_sent).sum();
            let msgs_recv: u64 = cell.phases.iter().map(|p| p.msgs_recv).sum();
            assert_eq!(msgs_sent, cost.msgs_sent, "rank {r} msgs_sent (q={q})");
            assert_eq!(msgs_recv, cost.msgs_recv, "rank {r} msgs_recv (q={q})");
        }
        // The traffic is attributed to the two exchange phases, not the
        // unphased catch-all slot.
        let r0 = &snap.ranks[0];
        assert!(r0.phase("gather-x").is_some_and(|p| p.words_sent > 0));
        assert!(r0.phase("reduce-y").is_some_and(|p| p.words_sent > 0));
        // And the derived ratio lands exactly on the scheduled budget:
        // each rank sends `scheduled_words_per_vector` in each of the two
        // exchange phases per served vector.
        assert_eq!(
            snap.derived.budget_ratio,
            Some(1.0),
            "sent words must sit exactly on 2·scheduled_words_per_vector (q={q})"
        );
        assert_eq!(snap.serve.gauge(keys::VECTORS_DONE), Some(reqs.len() as u64));
    }
}

/// With an impossible 1 ns latency budget every request breaches, so the
/// multi-window evaluator fires during the chaos serve and every rank
/// stamps the alert into its flight ring — the alert is visible in the
/// post-mortem flight window carrying the plane's alert id.
#[test]
fn chaos_slo_alert_fires_and_is_stamped_into_the_flight_window() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 8);
    let plane = Arc::new(TelemetryPlane::new(part.num_procs()));
    let mut slo = SloBurnRate::serve_e2e(1);
    let policy = ChaosPolicy {
        plan: FaultPlan::seeded(11),
        max_retries: 2,
        backoff: Duration::from_millis(5),
        recv_timeout: Duration::from_millis(250),
    };
    let run = parallel_sttsv_serve_chaos_with(
        &tensor,
        &part,
        &reqs,
        Mode::Scheduled,
        1,
        2,
        &policy,
        Some(&plane),
        Some(&mut slo),
    )
    .expect("chaos serve");
    let alerts = plane.alerts();
    assert!(!alerts.is_empty(), "a 1 ns budget must burn the SLO");
    let stamped: Vec<u64> = run
        .flight
        .iter()
        .flat_map(|f| f.events.iter())
        .filter(|e| e.kind == FlightKind::Alert)
        .map(|e| e.words)
        .collect();
    assert!(!stamped.is_empty(), "alert records must land in the flight window");
    for id in &stamped {
        assert!(alerts.iter().any(|a| a.id == *id), "flight alert id {id} unknown to the plane");
    }
}

/// A fully pinned snapshot (virtual slice clock, explicit observation
/// times, pinned sample time) renders exactly the golden exposition.
fn golden_snapshot() -> ClusterSnapshot {
    let plane = TelemetryPlane::with_config(PlaneConfig::new(2).with_slice_ns(1 << 40));
    let gather = plane.phase_slot("gather-x");
    let reduce = plane.phase_slot("reduce-y");
    plane.rank_cell(0).on_send(gather, 15);
    plane.rank_cell(0).on_recv(gather, 15);
    plane.rank_cell(0).on_send(reduce, 15);
    plane.rank_cell(0).on_recv(reduce, 15);
    plane.rank_cell(1).on_send(gather, 15);
    plane.rank_cell(1).on_recv(gather, 15);
    plane.rank_cell(1).on_send(reduce, 15);
    plane.rank_cell(1).on_recv(reduce, 15);
    let hidden = plane.gauge_slot(keys::HIDDEN_NS);
    let exposed = plane.gauge_slot(keys::EXPOSED_NS);
    plane.rank_cell(0).gauge_add(hidden, 900);
    plane.rank_cell(0).gauge_add(exposed, 100);
    plane.rank_cell(1).gauge_add(hidden, 600);
    let e2e = plane.hist_slot(keys::E2E_NS);
    plane.serve_cell().observe(e2e, 0, 800);
    plane.serve_cell().observe(e2e, 0, 1300);
    let vectors = plane.gauge_slot(keys::VECTORS_DONE);
    plane.serve_cell().gauge_set(vectors, 1);
    let cfg = ScrapeConfig::default().with_budget_words_per_vector(30);
    let mut snap = sample_plane(&plane, &cfg);
    snap.t_ns = 123_456_789; // the only wall-clock-dependent field
    snap
}

#[test]
fn prometheus_exposition_matches_the_golden_file() {
    let text = prometheus_text(&golden_snapshot());
    // `UPDATE_GOLDEN=1 cargo test -p symtensor-cli --test telemetry`
    // rewrites the golden after an intentional format change.
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/prometheus.txt");
        std::fs::write(path, &text).expect("rewrite golden");
    }
    let golden = include_str!("golden/prometheus.txt");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from tests/golden/prometheus.txt; \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
