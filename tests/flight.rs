//! Flight-recorder acceptance tests: the always-on recorder must never
//! change what the simulator computes (bit-identical outputs, identical
//! cost counters), the batched serving path must thread request ids all
//! the way into SLO readouts with real exemplars, and the exported window
//! must satisfy the shared artifact schema.

use rand::prelude::*;
use symtensor_core::generate::random_symmetric;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{Comm, Universe};
use symtensor_obs::{flight_json, validate, ArtifactKind, RequestLatency, SloReport};
use symtensor_parallel::{
    parallel_sttsv, parallel_sttsv_serve, CommSchedule, Mode, RankContext, ServeRequest,
    TetraPartition,
};
use symtensor_steiner::spherical;

fn setup(q: u64) -> (SymTensor3, TetraPartition) {
    let qs = q as usize;
    let n = (qs * qs + 1) * qs * (qs + 1);
    let part = TetraPartition::new(spherical(q), n).unwrap();
    let tensor = random_symmetric(n, &mut StdRng::seed_from_u64(7));
    (tensor, part)
}

fn input(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.01).sin()).collect()
}

/// Recorder-on and recorder-off runs of the same STTSV must produce
/// bit-identical per-rank outputs and identical `CostReport`s — the
/// recorder observes the run, it must never perturb it.
#[test]
fn recorder_on_and_off_runs_are_bit_identical() {
    let (tensor, part) = setup(2);
    let n = part.dim();
    let x = input(n);
    let p_count = part.num_procs();
    let schedule = CommSchedule::build(&part);

    let rank_main = |comm: &Comm| {
        let p = comm.rank();
        let ctx = RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule));
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        ctx.sttsv(comm, &my_shards)
    };

    let (res_on, rep_on, flight_on) = Universe::new(p_count).run_flight(rank_main);
    let (res_off, rep_off, flight_off) =
        Universe::new(p_count).with_flight_capacity(0).run_flight(rank_main);

    // Capacity 0 disables the recorder entirely: nothing recorded, nothing
    // retained.
    for snap in &flight_off {
        assert_eq!(snap.overhead.recorded, 0);
        assert_eq!(snap.overhead.dropped, 0);
        assert!(snap.events.is_empty());
    }
    // The default recorder actually saw the traffic.
    assert!(flight_on.iter().all(|s| s.overhead.recorded > 0));
    assert!(flight_on.iter().any(|s| s.words_sent() > 0));

    assert_eq!(rep_on, rep_off, "cost counters must not depend on the recorder");
    for (p, (on, off)) in res_on.iter().zip(&res_off).enumerate() {
        assert_eq!(on.1, off.1, "rank {p}: ternary count changed");
        for (a, b) in on.0.iter().zip(&off.0) {
            let identical =
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(identical, "rank {p}: output shards are not bit-identical");
        }
    }
}

/// The serving path threads request ids end to end: every record's spans
/// feed an [`SloReport`] whose p99 exemplar is a request that was actually
/// served, and every served output matches the single-vector reference.
#[test]
fn serving_slo_report_links_p99_to_a_real_request() {
    let (tensor, part) = setup(2);
    let n = part.dim();
    let requests: Vec<ServeRequest> = (0..6)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + v) as f64 * 0.03).cos()).collect();
            ServeRequest { id: 100 + v as u64, arrival_ns: 0, x }
        })
        .collect();
    let run = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 2).unwrap();

    // Served outputs are the single-vector answers, bit for bit.
    for (req, y) in requests.iter().zip(&run.ys) {
        let reference = parallel_sttsv(&tensor, &part, &req.x, Mode::Scheduled);
        assert!(y.iter().zip(&reference.y).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    let mut slo = SloReport::default();
    for r in &run.records {
        slo.observe(&RequestLatency {
            id: r.id,
            queue_wait_ns: r.queue_wait_ns,
            batch_form_ns: r.batch_form_ns,
            compute_ns: r.compute_ns,
            exchange_ns: r.exchange_ns,
            e2e_ns: r.e2e_ns,
        });
    }
    assert_eq!(slo.count(), 6);
    let exemplar = slo.e2e.p99_exemplar().expect("six observations give a p99 bucket");
    assert!(
        requests.iter().any(|r| r.id == exemplar.request),
        "p99 exemplar {} is not a served request id",
        exemplar.request
    );
    // The exemplar is the worst e2e latency actually recorded (ties may
    // resolve to any of the equally-slow requests).
    let worst = run.records.iter().max_by_key(|r| r.e2e_ns).unwrap();
    assert_eq!(exemplar.value, worst.e2e_ns);
    assert!(run.records.iter().any(|r| r.id == exemplar.request && r.e2e_ns == exemplar.value));
    // The rendered table names the exemplar request.
    let text = slo.render();
    assert!(text.contains(&format!("request {}", exemplar.request)), "table:\n{text}");
}

/// The exported flight window passes the shared artifact validator and
/// carries the request annotations the serving layer threaded through.
#[test]
fn serve_flight_window_validates_and_carries_request_ids() {
    let (tensor, part) = setup(2);
    let n = part.dim();
    let requests: Vec<ServeRequest> = (0..3).map(|v| ServeRequest::new(7 + v, input(n))).collect();
    let run = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 3).unwrap();

    let doc = flight_json(&run.flight);
    assert_eq!(validate(&doc), Ok(ArtifactKind::Flight));

    // Every request id appears in every rank's recorded window (each rank
    // runs the kernel pass for each vector).
    for snap in &run.flight {
        for req in &requests {
            assert!(
                snap.events.iter().any(|e| e.request == Some(req.id)),
                "rank {}: request {} left no flight record",
                snap.rank,
                req.id
            );
        }
    }
}
