//! Chaos-layer acceptance tests: deterministic fault injection must be
//! exactly reproducible from its seed, an inert plan must cost nothing,
//! dropped messages must surface as errors (never wrong answers, never
//! hangs), and the serving layer's retry/degrade recovery must return
//! outputs bit-identical to the fault-free run for every request it
//! recovers.
//!
//! The soak test writes its flight window to `target/test-artifacts/`, so
//! a CI failure uploads the evidence alongside the log.

use rand::prelude::*;
use std::time::{Duration, Instant};
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::sttsv_sym;
use symtensor_core::SymTensor3;
use symtensor_mpsim::{CommEventKind, CrashSpec, FaultPlan, FlightKind, InjectedFault, Universe};
use symtensor_obs::{flight_json, validate, ArtifactKind};
use symtensor_parallel::{
    parallel_sttsv_serve, parallel_sttsv_serve_chaos, ChaosPolicy, CommSchedule, Mode, RankContext,
    ServeRequest, TetraPartition,
};
use symtensor_steiner::spherical;

fn setup(q: u64) -> (SymTensor3, TetraPartition) {
    let qs = q as usize;
    let n = (qs * qs + 1) * qs * (qs + 1);
    let part = TetraPartition::new(spherical(q), n).unwrap();
    let tensor = random_symmetric(n, &mut StdRng::seed_from_u64(7));
    (tensor, part)
}

fn requests(n: usize, count: usize) -> Vec<ServeRequest> {
    (0..count)
        .map(|v| {
            let x: Vec<f64> = (0..n).map(|i| ((i + 3 * v) % 11) as f64 - 4.0).collect();
            ServeRequest::new(100 + v as u64, x)
        })
        .collect()
}

fn policy(plan: FaultPlan) -> ChaosPolicy {
    ChaosPolicy {
        plan,
        max_retries: 2,
        backoff: Duration::from_millis(5),
        recv_timeout: Duration::from_millis(250),
    }
}

/// One single-request scheduled plan-path run under `plan`, driven through
/// the same kernel entry the serving layer uses.
fn scheduled_run_with_faults(
    tensor: &SymTensor3,
    part: &TetraPartition,
    plan: FaultPlan,
    timeout: Duration,
) -> Result<(), String> {
    let n = part.dim();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let schedule = CommSchedule::build(part);
    Universe::new(part.num_procs())
        .with_recv_timeout(timeout)
        .with_poll_interval(Duration::from_millis(2))
        .with_faults(plan)
        .try_run_traced(|comm| {
            let p = comm.rank();
            let ctx =
                RankContext::new(tensor, part, p, Mode::Scheduled, Some(&schedule)).with_plan();
            let shards: Vec<Vec<f64>> = part
                .r_set(p)
                .iter()
                .map(|&i| {
                    let block = &x[part.block_range(i)];
                    block[part.shard_range(i, p)].to_vec()
                })
                .collect();
            ctx.sttsv_multi_requests(comm, &[shards], &[1])
        })
        .map(|_| ())
        .map_err(|failure| failure.to_string())
}

/// Chaos criterion: with the layer installed but the plan inert
/// (`drop_prob = 0`, no crash), the serving path's outputs, records and
/// `CostReport` are bit-identical to a run without the chaos layer, and
/// no fault records exist anywhere.
#[test]
fn inert_plan_is_bit_identical_to_no_chaos() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 5);
    let base = parallel_sttsv_serve(&tensor, &part, &reqs, Mode::Scheduled, 1, 2).unwrap();
    let chaos = parallel_sttsv_serve_chaos(
        &tensor,
        &part,
        &reqs,
        Mode::Scheduled,
        1,
        2,
        &policy(FaultPlan::seeded(42)),
    )
    .unwrap();

    assert_eq!(chaos.report, base.report, "inert chaos must not change the cost report");
    assert_eq!(chaos.ternary_per_rank, base.ternary_per_rank);
    assert_eq!(chaos.ys.len(), base.ys.len());
    for (a, b) in chaos.ys.iter().zip(&base.ys) {
        assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
    for rec in &chaos.records {
        assert_eq!(rec.retries, 0);
        assert!(!rec.degraded);
    }
    for snap in &chaos.flight {
        assert!(snap.events.iter().all(|e| e.kind != FlightKind::Fault));
    }
}

/// Property: any single dropped message in a Scheduled run, for q ∈ {2, 3},
/// yields `Err` — never a wrong `y`, never a hang past the timeout. Drop
/// sites are sampled across ranks and send indices.
#[test]
fn any_single_dropped_message_fails_the_run() {
    for q in [2u64, 3] {
        let (tensor, part) = setup(q);
        let p_count = part.num_procs();

        // Count each rank's sends in a fault-free run so drop indices are
        // sampled from real send sites.
        let schedule = CommSchedule::build(&part);
        let n = part.dim();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let (_, _, traces, _) = Universe::new(p_count)
            .try_run_traced(|comm| {
                let p = comm.rank();
                let ctx = RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule))
                    .with_plan();
                let shards: Vec<Vec<f64>> = part
                    .r_set(p)
                    .iter()
                    .map(|&i| {
                        let block = &x[part.block_range(i)];
                        block[part.shard_range(i, p)].to_vec()
                    })
                    .collect();
                ctx.sttsv_multi_requests(comm, &[shards], &[1])
            })
            .expect("fault-free run succeeds");
        let sends: Vec<usize> = traces
            .iter()
            .map(|t| t.iter().filter(|e| matches!(e.kind, CommEventKind::Send { .. })).count())
            .collect();

        let ranks = if q == 2 { vec![0, p_count / 2, p_count - 1] } else { vec![0, p_count - 1] };
        for rank in ranks {
            assert!(sends[rank] > 0, "rank {rank} sends nothing?");
            let nths = if q == 2 {
                vec![0, sends[rank] / 2, sends[rank] - 1]
            } else {
                vec![0, sends[rank] - 1]
            };
            for nth in nths {
                let plan = FaultPlan::seeded(9).drop_nth_send(rank, nth as u64);
                let started = Instant::now();
                let out =
                    scheduled_run_with_faults(&tensor, &part, plan, Duration::from_millis(150));
                let elapsed = started.elapsed();
                assert!(
                    out.is_err(),
                    "q={q}: dropping send {nth} of rank {rank} must fail the run"
                );
                assert!(
                    elapsed < Duration::from_secs(10),
                    "q={q} rank={rank} nth={nth}: abort took {elapsed:?} — fail-fast broken"
                );
            }
        }
    }
}

/// Same plan, same seed, twice: the injected-fault sequence on the
/// dropping rank is identical record for record.
#[test]
fn injected_fault_sequence_is_seed_deterministic() {
    let (tensor, part) = setup(2);
    let project = |plan: FaultPlan| -> Vec<(InjectedFault, usize, u64)> {
        let schedule = CommSchedule::build(&part);
        let n = part.dim();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let failure = Universe::new(part.num_procs())
            .with_recv_timeout(Duration::from_millis(150))
            .with_poll_interval(Duration::from_millis(2))
            .with_faults(plan)
            .try_run_traced(|comm| {
                let p = comm.rank();
                let ctx = RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule))
                    .with_plan();
                let shards: Vec<Vec<f64>> = part
                    .r_set(p)
                    .iter()
                    .map(|&i| {
                        let block = &x[part.block_range(i)];
                        block[part.shard_range(i, p)].to_vec()
                    })
                    .collect();
                ctx.sttsv_multi_requests(comm, &[shards], &[1])
            })
            .expect_err("a dropped message must fail the run");
        failure.traces[1]
            .iter()
            .filter_map(|e| match e.kind {
                CommEventKind::Fault { fault, peer, words } => Some((fault, peer, words)),
                _ => None,
            })
            .collect()
    };
    let plan = FaultPlan::seeded(31).drop_nth_send(1, 0);
    let a = project(plan.clone());
    let b = project(plan);
    assert!(!a.is_empty(), "rank 1 must record its injected drop");
    assert_eq!(a, b, "same seed must inject the identical fault sequence");
}

/// An attempt-0 crash is absorbed by one retry per batch and the
/// recovered outputs are bit-identical to the fault-free run.
#[test]
fn crash_on_first_attempt_recovers_bit_identically() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 4);
    let base = parallel_sttsv_serve(&tensor, &part, &reqs, Mode::Scheduled, 1, 2).unwrap();

    // Crash a rank at a (phase, round) where the schedule actually gives
    // it work, so the spec is guaranteed to fire.
    let schedule = CommSchedule::build(&part);
    let crash_rank = 1;
    let round = schedule
        .actions(crash_rank)
        .iter()
        .position(|a| a.send_to.is_some() || a.recv_from.is_some())
        .expect("rank 1 participates in some round") as u64;
    let spec = CrashSpec { rank: crash_rank, phase: "gather-x".into(), round, on_attempt: Some(0) };
    let chaos = parallel_sttsv_serve_chaos(
        &tensor,
        &part,
        &reqs,
        Mode::Scheduled,
        1,
        2,
        &policy(FaultPlan::seeded(5).with_crash(spec)),
    )
    .unwrap();

    for rec in &chaos.records {
        assert_eq!(rec.retries, 1, "request {}: every batch crashes once then recovers", rec.id);
        assert!(!rec.degraded);
    }
    for (a, b) in chaos.ys.iter().zip(&base.ys) {
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "recovered outputs must be bit-identical to the fault-free run"
        );
    }
    // Retries moved real words: the merged report is strictly larger.
    assert!(chaos.report.total_words_sent() > base.report.total_words_sent());
}

/// A persistent crash exhausts the retries and degrades every request to
/// the sequential fallback — deterministically, with the exact
/// `sttsv_sym` answer.
#[test]
fn persistent_crash_degrades_to_sequential_fallback() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 3);
    let schedule = CommSchedule::build(&part);
    let round = schedule
        .actions(0)
        .iter()
        .position(|a| a.send_to.is_some() || a.recv_from.is_some())
        .unwrap() as u64;
    let spec = CrashSpec { rank: 0, phase: "gather-x".into(), round, on_attempt: None };
    let mut pol = policy(FaultPlan::seeded(5).with_crash(spec));
    pol.max_retries = 1;
    pol.recv_timeout = Duration::from_millis(150);
    let chaos =
        parallel_sttsv_serve_chaos(&tensor, &part, &reqs, Mode::Scheduled, 1, 2, &pol).unwrap();

    for rec in &chaos.records {
        assert!(rec.degraded, "request {}: a persistent crash must degrade", rec.id);
        assert_eq!(rec.retries, 1);
    }
    for (req, y) in reqs.iter().zip(&chaos.ys) {
        let (expected, _) = sttsv_sym(&tensor, &req.x);
        assert!(
            y.iter().zip(&expected).all(|(a, b)| a.to_bits() == b.to_bits()),
            "degraded output must be the sequential fallback's answer"
        );
    }
}

/// Two chaos serving runs with the same seed agree on every retry count,
/// every degraded flag and every output bit.
#[test]
fn chaos_serving_runs_are_seed_deterministic() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 4);
    let run = || {
        let mut pol = policy(FaultPlan::seeded(1234).with_drop_prob(0.02));
        pol.recv_timeout = Duration::from_millis(150);
        parallel_sttsv_serve_chaos(&tensor, &part, &reqs, Mode::Scheduled, 1, 2, &pol).unwrap()
    };
    let a = run();
    let b = run();
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.retries, rb.retries, "request {}: retry counts must match", ra.id);
        assert_eq!(ra.degraded, rb.degraded, "request {}: degraded flags must match", ra.id);
    }
    for (ya, yb) in a.ys.iter().zip(&b.ys) {
        assert!(ya.iter().zip(yb).all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}

/// The chaos soak: several seeds and drop rates through the full serving
/// recovery path. Every recovered request is bit-identical to the
/// fault-free run; every degraded request is exactly the sequential
/// fallback. The last flight window is written to `target/test-artifacts/`
/// and must validate against the shared artifact schema.
#[test]
fn chaos_soak_recovers_or_degrades_every_request() {
    let (tensor, part) = setup(2);
    let reqs = requests(part.dim(), 4);
    let base = parallel_sttsv_serve(&tensor, &part, &reqs, Mode::Scheduled, 1, 2).unwrap();

    let artifact_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/test-artifacts");
    std::fs::create_dir_all(&artifact_dir).expect("can create target/test-artifacts");

    for seed in 0..6u64 {
        let drop_prob = [0.0, 0.01, 0.05][seed as usize % 3];
        let mut pol = policy(FaultPlan::seeded(seed).with_drop_prob(drop_prob));
        pol.recv_timeout = Duration::from_millis(150);
        let chaos =
            parallel_sttsv_serve_chaos(&tensor, &part, &reqs, Mode::Scheduled, 1, 2, &pol).unwrap();

        assert_eq!(chaos.records.len(), reqs.len());
        for (i, rec) in chaos.records.iter().enumerate() {
            assert!(rec.retries <= pol.max_retries);
            if rec.degraded {
                let (expected, _) = sttsv_sym(&tensor, &reqs[i].x);
                assert!(
                    chaos.ys[i].iter().zip(&expected).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "seed {seed}: degraded request {} diverged from the fallback",
                    rec.id
                );
            } else {
                assert!(
                    chaos.ys[i].iter().zip(&base.ys[i]).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "seed {seed}: recovered request {} is not bit-identical",
                    rec.id
                );
            }
        }

        let doc = flight_json(&chaos.flight);
        assert_eq!(validate(&doc), Ok(ArtifactKind::Flight), "seed {seed}");
        let path = artifact_dir.join(format!("chaos_soak_flight_{seed}.json"));
        std::fs::write(&path, doc.to_string_pretty()).expect("can write the soak artifact");
    }
}
