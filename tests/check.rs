//! Acceptance tests for the concurrency checker (PR-10): the schedule
//! explorer proves each lock-free protocol over every interleaving, the
//! mutation sweep proves the checker would catch a weakened protocol,
//! the race demo proves the vector-clock detector is live, the report
//! round-trips the shared artifact contract, and the lint gate holds
//! over the workspace itself.

use std::process::Command;

use symtensor_check::{models, sweep, Config};
use symtensor_obs::{json, schema};

/// Every primitive model passes exhaustively (no cap) with a nontrivial
/// interleaving count, in both pruned and unpruned exploration — and the
/// two modes agree, so pruning never hides a schedule that matters.
#[test]
fn all_models_pass_exhaustively_in_both_modes() {
    for def in models::defs() {
        let pruned = def.explore(&Config::default());
        assert!(
            pruned.violation.is_none(),
            "{}: violation under correct orderings: {:?}",
            pruned.name,
            pruned.violation
        );
        assert!(!pruned.capped, "{}: exploration hit the exec cap", pruned.name);
        assert!(
            pruned.interleavings >= 100,
            "{}: only {} interleavings — the model is too small to mean anything",
            pruned.name,
            pruned.interleavings
        );

        let unpruned = def.explore(&Config { prune: false, ..Config::default() });
        assert!(
            unpruned.violation.is_none(),
            "{}: pruning and full exploration disagree: {:?}",
            pruned.name,
            unpruned.violation
        );
        assert!(!unpruned.capped, "{}: unpruned exploration hit the exec cap", pruned.name);
        assert!(
            unpruned.interleavings >= pruned.interleavings,
            "{}: pruning explored more than the full space ({} > {})",
            pruned.name,
            pruned.interleavings,
            unpruned.interleavings
        );
    }
}

/// Weakening any non-Relaxed ordering (or removing a fence) must be
/// caught. The sweep is the checker checking itself: a survivor is a
/// blind spot that would launder broken orderings as "verified".
#[test]
fn mutation_sweep_kills_at_least_ninety_percent() {
    let report = sweep(&models::defs(), &Config::default());
    assert!(report.total() >= 10, "sweep too small: {} slots", report.total());
    for run in &report.runs {
        assert!(
            run.killed,
            "weakening {}/{} from {:?} survived — checker blind spot",
            run.model, run.slot, run.from
        );
    }
    assert!(report.kill_rate() >= 0.90, "kill rate {:.2} below the 0.90 floor", report.kill_rate());
}

/// The deliberately racy counter must trip the vector-clock detector.
#[test]
fn race_detector_catches_the_racy_counter() {
    let outcome = models::race_demo(&Config::default());
    let v = outcome.violation.expect("unsynchronized counter raced undetected");
    assert!(v.to_string().contains("race"), "unexpected violation kind: {v}");
}

/// The emitted `symtensor-check-v1` document parses with the workspace
/// JSON parser and validates as the Check artifact kind — the same
/// contract walk CI applies to every artifact family.
#[test]
fn check_report_roundtrips_the_shared_schema() {
    let quick = Config { max_execs: 5_000, ..Config::default() };
    let mut report = symtensor_check::CheckReport::default();
    for def in models::defs() {
        report.models.push(def.explore(&quick));
    }
    report.race_demo = Some(models::race_demo(&quick));
    report.mutation = Some(sweep(&models::defs()[..1], &quick));
    report.lint =
        symtensor_check::lint::lint_source("crates/pool/src/lib.rs", "let x = maybe.unwrap();\n");
    assert_eq!(report.lint.len(), 1, "seeded lint finding missing");

    let doc = json::parse(&report.to_json_string()).expect("report is not valid JSON");
    assert_eq!(schema::validate(&doc), Ok(schema::ArtifactKind::Check));
    assert!(!report.clean(), "a report with lint findings cannot be clean");
}

/// The lint binary exits 0 on this workspace (the gate CI enforces) and
/// nonzero on a tree seeded with a violation.
#[test]
fn lint_binary_gates_the_workspace() {
    let root = env!("CARGO_MANIFEST_DIR"); // crates/cli
    let ws_root = std::path::Path::new(root).parent().unwrap().parent().unwrap();

    let clean = Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg("--root")
        .arg(ws_root)
        .output()
        .expect("lint binary failed to spawn");
    assert!(
        clean.status.success(),
        "workspace lint gate failed:\n{}",
        String::from_utf8_lossy(&clean.stdout)
    );

    // Seed a violating tree: crates/pool/src with a naked unwrap.
    let dir = std::env::temp_dir().join(format!("symtensor-lint-seed-{}", std::process::id()));
    let src = dir.join("crates").join("pool").join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n").unwrap();

    let dirty = Command::new(env!("CARGO_BIN_EXE_lint"))
        .arg("--root")
        .arg(&dir)
        .output()
        .expect("lint binary failed to spawn");
    std::fs::remove_dir_all(&dir).ok();
    assert!(!dirty.status.success(), "lint passed a tree with a naked unwrap");
    let out = String::from_utf8_lossy(&dirty.stdout);
    assert!(out.contains("no-panic-path"), "finding not reported: {out}");
}

/// The check binary runs the full suite and writes a validated artifact.
#[test]
fn check_binary_writes_a_valid_artifact() {
    let root = env!("CARGO_MANIFEST_DIR");
    let ws_root = std::path::Path::new(root).parent().unwrap().parent().unwrap();
    let out_path =
        std::env::temp_dir().join(format!("symtensor-check-{}.json", std::process::id()));

    let run = Command::new(env!("CARGO_BIN_EXE_check"))
        .arg("--root")
        .arg(ws_root)
        .arg("--skip-mutation")
        .arg("--max-execs")
        .arg("20000")
        .arg("--out")
        .arg(&out_path)
        .output()
        .expect("check binary failed to spawn");
    assert!(
        run.status.success(),
        "check binary failed:\n{}{}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );

    let text = std::fs::read_to_string(&out_path).expect("artifact not written");
    std::fs::remove_file(&out_path).ok();
    let doc = json::parse(&text).expect("artifact is not valid JSON");
    assert_eq!(schema::validate(&doc), Ok(schema::ArtifactKind::Check));
}
