//! Acceptance tests for the observability layer: comm-matrix marginals
//! reconcile with the hot-path `CostReport` on real Algorithm-5 runs,
//! Chrome trace export is valid JSON with per-rank monotone timestamps,
//! and tracing is zero-cost (identical `CostReport` on vs. off).

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_mpsim::CommEvent;
use symtensor_obs::occupancy::spherical_step_bound;
use symtensor_obs::{json, phase_stats, RunObservation};
use symtensor_parallel::{parallel_sttsv, parallel_sttsv_traced, Mode, SttsvRun, TetraPartition};
use symtensor_steiner::spherical;

fn traced_alg5(q: usize, seed: u64, mode: Mode) -> (SttsvRun, Vec<Vec<CommEvent>>) {
    let n = (q * q + 1) * q * (q + 1);
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.013).sin()).collect();
    parallel_sttsv_traced(&tensor, &part, &x, mode)
}

/// Property over `q ∈ {2, 3, 4}` (P = 10, 30, 170) and random tensors: the
/// trace-derived P×P matrix marginals must equal the `CostReport` counters
/// (words and messages, sent and received, for every rank).
#[test]
fn comm_matrix_marginals_reconcile_for_q_2_3_4() {
    for (q, seeds) in [(2usize, vec![11u64, 12, 13]), (3, vec![21, 22]), (4, vec![31])] {
        for seed in seeds {
            for mode in [Mode::Scheduled, Mode::AllToAllSparse] {
                let (run, traces) = traced_alg5(q, seed, mode);
                let obs = RunObservation::new(run.report.clone(), traces);
                // `comm_matrix()` panics on any marginal mismatch.
                let matrix = obs.comm_matrix();
                assert_eq!(
                    matrix.total_words(),
                    run.report.total_words_sent(),
                    "q = {q} seed = {seed}"
                );
                for rank in 0..matrix.size() {
                    assert_eq!(matrix.row_words(rank), run.report.per_rank[rank].words_sent);
                    assert_eq!(matrix.col_words(rank), run.report.per_rank[rank].words_recv);
                }
            }
        }
    }
}

#[test]
fn chrome_trace_is_valid_json_with_monotone_per_rank_timestamps() {
    let (run, traces) = traced_alg5(3, 99, Mode::Scheduled);
    // Raw per-rank logs are timestamp-ordered.
    for rank_events in &traces {
        let mut last = 0u64;
        for e in rank_events {
            assert!(e.t_ns >= last, "per-rank timestamps must be non-decreasing");
            last = e.t_ns;
        }
    }
    let obs = RunObservation::new(run.report, traces);
    let text = obs.chrome_trace().to_string_pretty();
    let doc = json::parse(&text).expect("chrome trace must be valid JSON");
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());
    // Non-metadata events carry non-decreasing `ts` per (pid, tid) track.
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for e in events {
        let ph = e.get("ph").and_then(json::Value::as_str).unwrap();
        if ph == "M" {
            continue;
        }
        let key =
            (e.get("pid").unwrap().as_u64().unwrap(), e.get("tid").unwrap().as_u64().unwrap());
        let ts = e.get("ts").unwrap().as_f64().unwrap();
        if let Some(&prev) = last_ts.get(&key) {
            assert!(ts >= prev, "track {key:?} went backwards: {prev} -> {ts}");
        }
        last_ts.insert(key, ts);
    }
}

/// Zero-cost requirement: the tracing-on run must report exactly the same
/// communication costs as the tracing-off run (`CostReport` is
/// `PartialEq`; every counter of every rank must match).
#[test]
fn tracing_on_and_off_yield_identical_cost_reports() {
    for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
        let q = 2;
        let n = (q * q + 1) * q * (q + 1);
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).cos()).collect();
        let plain = parallel_sttsv(&tensor, &part, &x, mode);
        let (traced, traces) = parallel_sttsv_traced(&tensor, &part, &x, mode);
        assert_eq!(plain.report, traced.report, "tracing must not change costs");
        assert_eq!(plain.y, traced.y, "tracing must not change results");
        assert!(traces.iter().any(|t| !t.is_empty()), "traced run must record events");
    }
}

/// The per-phase word totals (top-level spans) partition the run's totals
/// exactly, and the scheduled run's observed rounds meet the paper's
/// `q³/2 + 3q²/2 − 1` step bound with full sender occupancy.
#[test]
fn phase_totals_partition_run_and_occupancy_meets_step_bound() {
    for q in [2usize, 3] {
        let (run, traces) = traced_alg5(q, 55, Mode::Scheduled);
        let obs = RunObservation::new(run.report.clone(), traces);
        let spans = obs.spans();
        let stats = phase_stats(&spans);
        let sent: u64 = stats.values().map(|s| s.total_cost.words_sent).sum();
        let recv: u64 = stats.values().map(|s| s.total_cost.words_recv).sum();
        assert_eq!(sent, run.report.total_words_sent(), "q = {q}");
        assert_eq!(recv, run.report.total_words_recv(), "q = {q}");
        assert!(stats.contains_key("gather-x"));
        assert!(stats.contains_key("local-compute"));
        assert!(stats.contains_key("reduce-y"));

        let occ = obs.occupancy();
        assert_eq!(occ.num_rounds() as u64, spherical_step_bound(q), "q = {q}");
        assert!(occ.within_step_bound(q));
        assert!((occ.mean_sender_utilization() - 1.0).abs() < 1e-12, "perfect pairing rounds");
    }
}

/// The compiled-plan traced driver feeds the same observability pipeline:
/// its comm matrix reconciles with its `CostReport`, which is itself
/// identical (per rank, not just in aggregate) to the legacy driver's —
/// the plan changes *when* words move through memory, never how many cross
/// the network.
#[test]
fn planned_traced_run_reconciles_matrix_and_report() {
    use symtensor_parallel::parallel_sttsv_planned_traced;
    for q in [2usize, 3] {
        let n = (q * q + 1) * q * (q + 1);
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let mut rng = StdRng::seed_from_u64(77 + q as u64);
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.013).sin()).collect();
        let (planned, traces) =
            parallel_sttsv_planned_traced(&tensor, &part, &x, Mode::Scheduled, 1);
        let legacy = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
        assert_eq!(planned.report, legacy.report, "q = {q}: plan must not change comm costs");
        assert_eq!(planned.y, legacy.y, "q = {q}: plan must be bit-identical");
        let obs = RunObservation::new(planned.report.clone(), traces);
        // comm_matrix() panics if the trace marginals disagree with the
        // hot-path counters.
        let m = obs.comm_matrix();
        assert_eq!(m.total_words(), planned.report.total_words_sent(), "q = {q}");
        let occ = obs.occupancy();
        assert_eq!(occ.num_rounds() as u64, spherical_step_bound(q), "q = {q}");
    }
}
