//! Failure-injection tests: the simulated machine must surface schedule
//! mismatches, missing messages and malformed inputs as errors — never as
//! silent hangs or wrong answers.

use std::time::Duration;
use symtensor_mpsim::{CommError, Universe};
use symtensor_parallel::{
    parallel_sttsv, parallel_sttsv_serve, Mode, ServeError, ServeRequest, TetraPartition,
};
use symtensor_steiner::{spherical, sqs8, SteinerSystem};

#[test]
fn mismatched_schedule_surfaces_as_timeout() {
    // Rank 1 expects a message rank 0 never sends.
    let universe = Universe::new(3)
        .with_recv_timeout(Duration::from_millis(40))
        .with_poll_interval(Duration::from_millis(2));
    let (results, _) = universe.run(|comm| {
        if comm.rank() == 1 {
            match comm.recv(0, 77) {
                Err(CommError::Timeout { rank, from, tag }) => (rank, from, tag),
                other => panic!("expected timeout, got {other:?}"),
            }
        } else {
            (0, 0, 0)
        }
    });
    assert_eq!(results[1], (1, 0, 77));
}

#[test]
fn collective_with_partial_participation_times_out() {
    // Rank 2 skips the all-gather: *every* surviving participant must
    // observe the failure — the first timeout trips the shared abort
    // flag, so nobody blocks out the full timeout on a dead peer.
    let universe = Universe::new(3)
        .with_recv_timeout(Duration::from_millis(60))
        .with_poll_interval(Duration::from_millis(2));
    let (results, _) = universe.run(|comm| {
        if comm.rank() == 2 {
            true // deserts the collective
        } else {
            comm.all_gather(vec![1.0]).is_err()
        }
    });
    assert!(results[0], "rank 0 must observe the deserted collective");
    assert!(results[1], "rank 1 must observe the deserted collective");
}

#[test]
fn deserted_all_to_all_errors_on_every_survivor() {
    // Same desertion, harder collective: all_to_all_v has P-1 rounds and
    // each survivor only talks to the deserter in one of them. Fail-fast
    // propagation must still bring everyone down within one abort poll.
    let universe = Universe::new(4)
        .with_recv_timeout(Duration::from_millis(80))
        .with_poll_interval(Duration::from_millis(2));
    let (results, _) = universe.run(|comm| {
        if comm.rank() == 3 {
            true
        } else {
            let chunks: Vec<Vec<f64>> = (0..4).map(|d| vec![d as f64]).collect();
            comm.all_to_all_v(chunks).is_err()
        }
    });
    for (rank, observed) in results.iter().enumerate() {
        assert!(observed, "rank {rank} must observe the deserted all-to-all");
    }
}

#[test]
fn zero_batch_cap_is_a_structured_error() {
    // Regression: this used to panic inside `chunks(0)`.
    let part = TetraPartition::new(spherical(2), 30).unwrap();
    let tensor = symtensor_core::SymTensor3::zeros(30);
    let requests = vec![ServeRequest::new(0, vec![0.0; 30])];
    let err = parallel_sttsv_serve(&tensor, &part, &requests, Mode::Scheduled, 1, 0).unwrap_err();
    assert_eq!(err, ServeError::ZeroBatchCap);
    assert!(format!("{err}").contains("batch capacity"));
}

#[test]
fn wrong_length_x_panics() {
    let part = TetraPartition::new(spherical(2), 30).unwrap();
    let tensor = symtensor_core::SymTensor3::zeros(30);
    let result = std::panic::catch_unwind(|| {
        parallel_sttsv(&tensor, &part, &vec![0.0; 29], Mode::Scheduled)
    });
    assert!(result.is_err());
}

#[test]
fn wrong_tensor_dimension_panics() {
    let part = TetraPartition::new(spherical(2), 30).unwrap();
    let tensor = symtensor_core::SymTensor3::zeros(25);
    let result = std::panic::catch_unwind(|| {
        parallel_sttsv(&tensor, &part, &vec![0.0; 30], Mode::Scheduled)
    });
    assert!(result.is_err());
}

#[test]
fn corrupted_steiner_system_rejected_by_partition_verify() {
    // Swap one block for a duplicate: the partition either fails to build
    // (matching infeasible) or fails verification.
    let good = sqs8();
    let mut blocks = good.blocks().to_vec();
    blocks[0] = blocks[1].clone();
    let bad = SteinerSystem::from_blocks(8, 4, blocks);
    assert!(bad.verify().is_err());
    match TetraPartition::new(bad, 56) {
        Err(_) => {}
        Ok(part) => assert!(part.verify().is_err()),
    }
}

#[test]
fn indivisible_dimension_is_a_structured_error() {
    let err = TetraPartition::new(spherical(2), 31).unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("31"), "error should name the dimension: {msg}");
}

#[test]
fn zero_tensor_runs_cleanly_through_the_whole_stack() {
    let n = 30;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let tensor = symtensor_core::SymTensor3::zeros(n);
    let x = vec![1.0; n];
    for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
        let run = parallel_sttsv(&tensor, &part, &x, mode);
        assert!(run.y.iter().all(|&v| v == 0.0));
    }
}
