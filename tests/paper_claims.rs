//! One test per quantitative claim in the paper, with section references.
//! These are the acceptance tests of the reproduction: each encodes a
//! sentence of the paper as an executable assertion.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::{lower_tetra_points, strict_lower_tetra_points, sttsv_naive, sttsv_sym};
use symtensor_parallel::schedule::{shared_row_blocks, spherical_round_count};
use symtensor_parallel::{bounds, parallel_sttsv, CommSchedule, Mode, TetraPartition};
use symtensor_steiner::counting::spherical_counts;
use symtensor_steiner::{spherical, sqs8};

/// §3: "The total number of points in the iteration space is
/// n(n+1)(n+2)/6 of which n(n−1)(n−2)/6 correspond to … the strict lower
/// tetrahedral portion."
#[test]
fn claim_iteration_space_sizes() {
    for n in [1usize, 5, 10, 50] {
        let total = lower_tetra_points(n);
        let strict = strict_lower_tetra_points(n);
        assert_eq!(total, (n * (n + 1) * (n + 2) / 6) as u64);
        assert_eq!(strict, bounds::strict_tetra(n));
        // The remainder is the diagonal part: n² points with ≥ 2 equal.
        assert_eq!(total - strict, (n * n) as u64);
    }
}

/// §3: "Algorithm 4 performs n²(n+1)/2 ternary multiplications,
/// approximately half the number of those in Algorithm 3 [n³]."
#[test]
fn claim_algorithm_4_halves_the_work() {
    let n = 24;
    let mut rng = StdRng::seed_from_u64(1);
    let t = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];
    let (_, naive) = sttsv_naive(&t, &x);
    let (_, sym) = sttsv_sym(&t, &x);
    assert_eq!(naive.ternary_mults, (n * n * n) as u64);
    assert_eq!(sym.ternary_mults, (n * n * (n + 1) / 2) as u64);
    let ratio = naive.ternary_mults as f64 / sym.ternary_mults as f64;
    assert!((ratio - 2.0).abs() < 0.1);
}

/// §6: "there are |Σ| = q(q²+1) blocks, any index appears in q(q+1)
/// blocks, and two distinct indices together appear in q+1 blocks."
#[test]
fn claim_steiner_block_counts() {
    for q in [2usize, 3, 4] {
        let sys = spherical(q as u64);
        assert_eq!(sys.num_blocks(), spherical_counts::num_processors(q));
        let p2b = sys.point_to_blocks();
        for blocks in &p2b {
            assert_eq!(blocks.len(), spherical_counts::blocks_through_element(q));
        }
        // Pairs: check a sample exhaustively for q ≤ 3.
        if q <= 3 {
            let m = sys.num_points();
            for a in 0..m {
                for b in a + 1..m {
                    let count = sys
                        .blocks()
                        .iter()
                        .filter(|blk| {
                            blk.binary_search(&a).is_ok() && blk.binary_search(&b).is_ok()
                        })
                        .count();
                    assert_eq!(count, spherical_counts::blocks_through_pair(q));
                }
            }
        }
    }
}

/// §6: "There are (q²+1)(q²+2)(q²+3)/6 blocks in the lower tetrahedron …
/// (q²+1)q²(q²−1)/6 off diagonal, q²(q²+1) non-central diagonal and q²+1
/// central diagonal."
#[test]
fn claim_block_census() {
    use symtensor_parallel::tetra::{all_lower_blocks, BlockKind};
    for q in [2usize, 3] {
        let m = q * q + 1;
        let blocks = all_lower_blocks(m);
        assert_eq!(blocks.len(), m * (m + 1) * (m + 2) / 6);
        let off = blocks.iter().filter(|b| b.kind() == BlockKind::OffDiagonal).count();
        let nc = blocks
            .iter()
            .filter(|b| matches!(b.kind(), BlockKind::NonCentralIIK | BlockKind::NonCentralIKK))
            .count();
        let central = blocks.iter().filter(|b| b.kind() == BlockKind::CentralDiagonal).count();
        assert_eq!(off, m * q * q * (q * q - 1) / 6);
        assert_eq!(nc, q * q * m);
        assert_eq!(central, m);
    }
}

/// §6.1.2: "each processor has (q+1)·b/(q(q+1)) = n/P elements of x at the
/// beginning … and the same number of elements of y at the end."
#[test]
fn claim_vector_ownership() {
    for q in [2usize, 3] {
        let n = (q * q + 1) * q * (q + 1) * 2;
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let p = part.num_procs();
        for rank in 0..p {
            assert_eq!(part.vector_words(rank), n / p);
        }
    }
}

/// §6.1.3: "the processor stores at most (q+1)q(q−1)/6·b³ + q·b²(b+1)/2 +
/// b(b+1)(b+2)/6 ≈ n³/(6P) elements of the tensor."
#[test]
fn claim_tensor_storage_bound() {
    for q in [2usize, 3] {
        let b = q * (q + 1) * 2;
        let n = (q * q + 1) * b;
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let bound = bounds::tensor_words_upper(q, b);
        for rank in 0..part.num_procs() {
            assert!(part.tensor_words(rank) as u64 <= bound, "rank {rank}");
        }
        // At least one rank attains it (a rank holding a central block).
        assert!((0..part.num_procs()).any(|r| part.tensor_words(r) as u64 == bound));
    }
}

/// Theorem 5.2 + §7.2.2: the scheduled algorithm's measured bandwidth is
/// `2(n(q+1)/(q²+1) − n/P)`, at least the lower bound, with the exactly
/// matching leading term.
#[test]
fn claim_theorem_52_tightness() {
    let q = 3usize;
    let n = 240;
    let p = bounds::spherical_procs(q);
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let tensor = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];
    let run = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let measured = run.report.bandwidth_cost();
    assert_eq!(measured as usize, bounds::scheduled_words_total(n, q));
    assert!(measured as f64 >= bounds::lower_bound_words(n, p));
    // Leading terms: both are 2·n·(1 + o(1))/P^{1/3} with constant 2.
    let leading_algo = 2.0 * n as f64 * (q as f64 + 1.0) / (q as f64 * q as f64 + 1.0);
    assert!((measured as f64 - leading_algo).abs() <= 2.0 * n as f64 / p as f64 + 1.0);
}

/// §7.2.2: "each processor sends and receives … in q³/2 + 3q²/2 − 1 steps"
/// and two processors share at most 2 row blocks; partner counts are
/// q²(q+1)/2 (two blocks) and q²−1 (one block).
#[test]
fn claim_schedule_structure() {
    for q in [2usize, 3] {
        let part = TetraPartition::new(spherical(q as u64), (q * q + 1) * q * (q + 1)).unwrap();
        let schedule = CommSchedule::build(&part);
        assert_eq!(schedule.num_rounds(), spherical_round_count(q));
        for p in 0..part.num_procs() {
            let mut two = 0;
            let mut one = 0;
            for other in 0..part.num_procs() {
                if other == p {
                    continue;
                }
                match shared_row_blocks(&part, p, other).len() {
                    2 => two += 1,
                    1 => one += 1,
                    0 => {}
                    _ => panic!("shares more than 2 row blocks"),
                }
            }
            assert_eq!(two, q * q * (q + 1) / 2);
            assert_eq!(one, q * q - 1);
        }
    }
}

/// Appendix A: the SQS(8) partition runs in 12 steps, "less than P − 1".
#[test]
fn claim_figure_1_step_count() {
    let part = TetraPartition::new(sqs8(), 56).unwrap();
    let schedule = CommSchedule::build(&part);
    assert_eq!(schedule.num_rounds(), 12);
    assert!(schedule.num_rounds() < part.num_procs() - 1 + 1);
    for round in schedule.rounds() {
        assert_eq!(round.len(), 14);
    }
}

/// §7.2.2 (collective variant): "the bandwidth cost of the algorithm using
/// All-to-All collectives is 4n/(q+1)·(1 − 1/P)".
#[test]
fn claim_alltoall_cost() {
    let q = 2usize;
    let n = 120;
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let tensor = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];
    let run = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllPadded);
    let p = part.num_procs() as f64;
    let formula = 4.0 * n as f64 / (q as f64 + 1.0) * (1.0 - 1.0 / p);
    assert_eq!(run.report.bandwidth_cost() as f64, formula);
}

/// §1/§6: "no tensor data needs to be communicated and only the input and
/// output vectors need to be exchanged" (owner-compute rule).
#[test]
fn claim_zero_tensor_traffic() {
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let tensor = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];
    let run = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    // Total traffic = exactly 2 vector exchanges; the tensor (n³/6 words ≫
    // n) never moves.
    let per_vec = bounds::scheduled_words_per_vector(n, 2) as u64;
    assert_eq!(run.report.total_words_sent(), 2 * per_vec * part.num_procs() as u64);
    assert!(run.report.total_words_sent() < (n * n) as u64);
}
