//! Cross-substrate integration: persistence → scatter → repeated distributed
//! solves, exercising `core::io`, `parallel::scatter`, `RankContext` reuse
//! and the 2-D triangle scheme side by side with the 3-D one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::{random_odeco, random_symmetric};
use symtensor_core::io::{read_tensor, write_tensor};
use symtensor_core::seq::sttsv_sym;
use symtensor_core::symmat::{random_symmetric_matrix, symv_sym};
use symtensor_mpsim::Universe;
use symtensor_parallel::algorithm5::RankContext;
use symtensor_parallel::scatter::scatter_from_root;
use symtensor_parallel::triangle::{parallel_symv, TrianglePartition};
use symtensor_parallel::{Mode, TetraPartition};
use symtensor_steiner::spherical;

#[test]
fn persisted_tensor_runs_identically_after_reload() {
    let n = 30;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(300);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin()).collect();

    let mut buf = Vec::new();
    write_tensor(&tensor, &mut buf).unwrap();
    let reloaded = read_tensor(buf.as_slice()).unwrap();

    let run_a = symtensor_parallel::parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let run_b = symtensor_parallel::parallel_sttsv(&reloaded, &part, &x, Mode::Scheduled);
    assert_eq!(run_a.y, run_b.y, "bit-identical after a save/load round trip");
    assert_eq!(run_a.report, run_b.report);
}

#[test]
fn scattered_blocks_drive_repeated_sttsv_without_reextraction() {
    // The production pattern: scatter once, then run many iterations on the
    // scattered data (the context is reused; only vectors move).
    let n = 30;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(301);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| 1.0 / (i + 2) as f64).collect();

    let (scattered, _setup_cost) = scatter_from_root(&tensor, &part, &x);
    let iterations = 3;

    let (rank_results, report) = Universe::new(part.num_procs()).run(|comm| {
        let p = comm.rank();
        let (owned, shards) = scattered[p].clone();
        let ctx = RankContext::from_parts(&part, owned, Mode::AllToAllSparse, None);
        // Iterate STTSV on the same context; feed y back in as the next x.
        let mut current = shards;
        for _ in 0..iterations {
            let (y, _) = ctx.sttsv(comm, &current);
            current = y;
        }
        current
    });

    // Reference: the same iterated map sequentially.
    let mut reference = x.clone();
    for _ in 0..iterations {
        let (y, _) = sttsv_sym(&tensor, &reference);
        reference = y;
    }
    let mut assembled = vec![0.0; n];
    for (p, shards) in rank_results.into_iter().enumerate() {
        for (t, &i) in part.r_set(p).iter().enumerate() {
            let global = part.block_range(i);
            let local = part.shard_range(i, p);
            assembled[global.start + local.start..global.start + local.end]
                .copy_from_slice(&shards[t]);
        }
    }
    for i in 0..n {
        assert!(
            (assembled[i] - reference[i]).abs() < 1e-7 * (1.0 + reference[i].abs()),
            "y[{i}]: {} vs {}",
            assembled[i],
            reference[i]
        );
    }
    // Per-iteration comm is the steady-state cost (no tensor traffic).
    let per_vec = symtensor_parallel::bounds::scheduled_words_per_vector(n, 2) as u64;
    for cost in &report.per_rank {
        assert_eq!(cost.words_sent, iterations as u64 * 2 * per_vec);
    }
}

#[test]
fn two_d_and_three_d_schemes_share_the_cost_framework() {
    // Same machine, same counters: SYMV on a plane partition and STTSV on
    // a spherical partition, both verified against their sequential kernels.
    let mut rng = StdRng::seed_from_u64(302);

    let q2d = 2u64;
    let n2d = 7 * 3 * 2;
    let tri = TrianglePartition::new(q2d, n2d).unwrap();
    let matrix = random_symmetric_matrix(n2d, &mut rng);
    let x2: Vec<f64> = (0..n2d).map(|i| (i as f64 * 0.4).cos()).collect();
    let symv = parallel_symv(&matrix, &tri, &x2);
    let (y2_ref, _) = symv_sym(&matrix, &x2);
    for (got, want) in symv.y.iter().zip(&y2_ref) {
        assert!((got - want).abs() < 1e-10 * (1.0 + want.abs()));
    }

    let n3d = 30;
    let tet = TetraPartition::new(spherical(2), n3d).unwrap();
    let odeco = random_odeco(n3d, 2, &mut rng);
    let run =
        symtensor_parallel::parallel_sttsv(&odeco.tensor, &tet, &odeco.vectors[0], Mode::Scheduled);
    // STTSV of an eigenvector gives λ·v.
    for (i, &v) in odeco.vectors[0].iter().enumerate() {
        assert!((run.y[i] - odeco.eigenvalues[0] * v).abs() < 1e-9);
    }
    // Both reports count the same machine-independent quantity.
    assert!(symv.report.bandwidth_cost() > 0);
    assert!(run.report.bandwidth_cost() > 0);
}
