//! End-to-end integration tests spanning all crates: Steiner construction →
//! tetrahedral partition → Algorithm 5 on the simulated machine → results
//! and communication counters checked against the sequential kernels and
//! the paper's closed forms.

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::{random_odeco, random_symmetric};
use symtensor_core::hopm::{hopm, HopmOptions};
use symtensor_core::seq::{sttsv_naive, sttsv_sym};
use symtensor_parallel::hopm::parallel_hopm;
use symtensor_parallel::schedule::spherical_round_count;
use symtensor_parallel::{bounds, parallel_sttsv, parallel_sttsv_padded, Mode, TetraPartition};
use symtensor_steiner::{spherical, sqs8};

fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (idx, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())), "index {idx}: {x} vs {y}");
    }
}

#[test]
fn all_modes_and_systems_match_both_sequential_algorithms() {
    let mut rng = StdRng::seed_from_u64(100);
    let configs: Vec<(symtensor_steiner::SteinerSystem, usize)> =
        vec![(spherical(2), 30), (spherical(3), 60), (sqs8(), 40)];
    for (system, n) in configs {
        let part = TetraPartition::new(system, n).unwrap();
        part.verify().unwrap();
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) as f64 * 0.01).sin()).collect();
        let (y4, _) = sttsv_sym(&tensor, &x);
        let (y3, _) = sttsv_naive(&tensor, &x);
        assert_vec_close(&y3, &y4, 1e-11);
        for mode in [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse] {
            let run = parallel_sttsv(&tensor, &part, &x, mode);
            assert_vec_close(&run.y, &y4, 1e-10);
        }
    }
}

#[test]
fn communication_counters_match_section_7_closed_forms() {
    // q = 2: per-vector scheduled words = n·3/5 − n/10; rounds = 9.
    let n = 60;
    let q = 2usize;
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(101);
    let tensor = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];

    let sched = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let per_vec = bounds::scheduled_words_per_vector(n, q) as u64;
    for cost in &sched.report.per_rank {
        assert_eq!(cost.words_sent, 2 * per_vec);
        assert_eq!(cost.words_recv, 2 * per_vec);
        assert_eq!(cost.rounds, 2 * spherical_round_count(q) as u64);
        // Latency: one message per round.
        assert_eq!(cost.msgs_sent, cost.rounds);
    }

    let a2a = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllPadded);
    let total = bounds::alltoall_words_total(n, q) as u64;
    for cost in &a2a.report.per_rank {
        assert_eq!(cost.words_sent, total);
        // P−1 rounds per all-to-all, two vector phases.
        assert_eq!(cost.rounds, 2 * (part.num_procs() as u64 - 1));
    }

    // No tensor words ever move: total traffic is exactly the vector traffic.
    let expected_total: u64 = (0..part.num_procs() as u64).map(|_| 2 * per_vec).sum();
    assert_eq!(sched.report.total_words_sent(), expected_total);
}

#[test]
fn scheduled_never_below_lower_bound_and_close_above() {
    for (q, scale) in [(2usize, 1usize), (2, 3), (3, 1), (3, 2)] {
        let n = (q * q + 1) * q * (q + 1) * scale;
        let p = bounds::spherical_procs(q);
        let part = TetraPartition::new(spherical(q as u64), n).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let tensor = random_symmetric(n, &mut rng);
        let x = vec![0.5; n];
        let run = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
        let lb = bounds::lower_bound_words(n, p);
        let measured = run.report.bandwidth_cost() as f64;
        assert!(measured >= lb * 0.999, "q={q} n={n}: {measured} < bound {lb}");
        assert!(
            measured <= lb * (1.0 + 3.0 / q as f64),
            "q={q} n={n}: {measured} too far above bound {lb}"
        );
    }
}

#[test]
fn padded_driver_is_equivalent_for_awkward_dimensions() {
    let mut rng = StdRng::seed_from_u64(103);
    for n in [7usize, 23, 61, 97] {
        let tensor = random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5).recip()).collect();
        let (y_ref, _) = sttsv_sym(&tensor, &x);
        let run = parallel_sttsv_padded(&tensor, spherical(2), &x, Mode::AllToAllSparse);
        assert_eq!(run.y.len(), n);
        assert_vec_close(&run.y, &y_ref, 1e-10);
    }
}

#[test]
fn hopm_pipeline_agrees_with_sequential_and_planted_truth() {
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(104);
    let odeco = random_odeco(n, 4, &mut rng);
    let mut x0 = odeco.vectors[0].clone();
    x0[5] -= 0.07;
    let opts = HopmOptions { tol: 1e-12, max_iters: 300 };
    let seq = hopm(&odeco.tensor, &x0, opts);
    for mode in [Mode::Scheduled, Mode::AllToAllPadded] {
        let (par, _) = parallel_hopm(&odeco.tensor, &part, &x0, opts, mode);
        assert!(par.converged);
        assert!((par.lambda - seq.lambda).abs() < 1e-8);
        assert!((par.lambda - odeco.eigenvalues[0]).abs() < 1e-7);
    }
}

#[test]
fn deterministic_across_runs() {
    // The simulated machine fixes reduction orders, so repeated runs are
    // bitwise identical (unlike real MPI).
    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let mut rng = StdRng::seed_from_u64(105);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let run1 = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let run2 = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    assert_eq!(run1.y, run2.y);
    assert_eq!(run1.report, run2.report);
}

#[test]
fn ternary_work_is_conserved_and_balanced() {
    let n = 120;
    let part = TetraPartition::new(spherical(3), n).unwrap();
    let mut rng = StdRng::seed_from_u64(106);
    let tensor = random_symmetric(n, &mut rng);
    let x = vec![1.0; n];
    let run = parallel_sttsv(&tensor, &part, &x, Mode::AllToAllSparse);
    let total: u64 = run.ternary_per_rank.iter().sum();
    let n64 = n as u64;
    assert_eq!(total, n64 * n64 * (n64 + 1) / 2);
    let max = *run.ternary_per_rank.iter().max().unwrap() as f64;
    let ideal = bounds::comp_cost_leading(n, part.num_procs());
    assert!(max / ideal < 1.2, "imbalance {max} / {ideal}");
}

#[test]
fn executed_message_sequence_matches_the_schedule_exactly() {
    // Trace every send/recv of a scheduled-mode run and check it is
    // exactly the edge-colored schedule, twice (x phase then y phase),
    // with per-round tags in order — the executable form of Theorem 7.2.
    use symtensor_mpsim::{CommEventKind, Universe};
    use symtensor_parallel::algorithm5::RankContext;
    use symtensor_parallel::CommSchedule;

    let n = 60;
    let part = TetraPartition::new(spherical(2), n).unwrap();
    let schedule = CommSchedule::build(&part);
    let mut rng = StdRng::seed_from_u64(400);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

    let (_, _, traces) = Universe::new(part.num_procs()).run_traced(|comm| {
        let p = comm.rank();
        let ctx = RankContext::new(&tensor, &part, p, Mode::Scheduled, Some(&schedule));
        let my_shards: Vec<Vec<f64>> = part
            .r_set(p)
            .iter()
            .map(|&i| {
                let block = &x[part.block_range(i)];
                block[part.shard_range(i, p)].to_vec()
            })
            .collect();
        let _ = ctx.sttsv(comm, &my_shards);
    });

    let rounds = schedule.num_rounds();
    for (rank, trace) in traces.iter().enumerate() {
        // Each phase: one send and one recv per round (every round of a
        // regular schedule covers every rank in both roles).
        let sends: Vec<_> = trace
            .iter()
            .filter_map(|e| match e.kind {
                CommEventKind::Send { dst, tag, .. } => Some((dst, tag)),
                _ => None,
            })
            .collect();
        let recvs: Vec<_> = trace
            .iter()
            .filter_map(|e| match e.kind {
                CommEventKind::Recv { src, tag, .. } => Some((src, tag)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2 * rounds, "rank {rank} send count");
        assert_eq!(recvs.len(), 2 * rounds, "rank {rank} recv count");
        for phase in 0..2 {
            for round in 0..rounds {
                let act = schedule.actions(rank)[round];
                let (dst, _) = sends[phase * rounds + round];
                assert_eq!(Some(dst), act.send_to, "rank {rank} phase {phase} round {round}");
                let (src, _) = recvs[phase * rounds + round];
                assert_eq!(Some(src), act.recv_from, "rank {rank} phase {phase} round {round}");
            }
        }
    }
}

#[test]
fn q4_execution_matches_closed_forms() {
    // A larger real execution: P = 68 ranks, n = 340 (b = λ₁ = 20).
    let q = 4usize;
    let n = 17 * 20;
    let part = TetraPartition::new(spherical(q as u64), n).unwrap();
    let mut rng = StdRng::seed_from_u64(401);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64 * 0.2).cos()).collect();
    let run = parallel_sttsv(&tensor, &part, &x, Mode::Scheduled);
    let (y_ref, _) = sttsv_sym(&tensor, &x);
    for (i, (got, want)) in run.y.iter().zip(&y_ref).enumerate() {
        assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()), "y[{i}]");
    }
    let expect = 2 * bounds::scheduled_words_per_vector(n, q) as u64;
    for cost in &run.report.per_rank {
        assert_eq!(cost.words_sent, expect);
        assert_eq!(cost.rounds, 2 * spherical_round_count(q) as u64);
    }
}
