//! Property-based tests (proptest) on the core invariants:
//!
//! * parallel STTSV ≡ sequential STTSV for arbitrary tensors/vectors,
//! * STTSV is linear in the tensor and quadratic in the vector scale,
//! * packed storage is permutation-invariant,
//! * partitions remain valid for arbitrary block scales.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use symtensor_core::seq::{sttsv_naive, sttsv_sym};
use symtensor_core::SymTensor3;
use symtensor_parallel::{parallel_sttsv, Mode, TetraPartition};
use symtensor_steiner::{spherical, sqs8};

fn tensor_strategy(n: usize) -> impl Strategy<Value = SymTensor3> {
    let len = n * (n + 1) * (n + 2) / 6;
    proptest::collection::vec(-1.0f64..1.0, len)
        .prop_map(move |data| SymTensor3::from_packed(n, data))
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn naive_and_symmetric_agree(
        (tensor, x) in (3usize..12).prop_flat_map(|n| (tensor_strategy(n), vector_strategy(n)))
    ) {
        let (y3, ops3) = sttsv_naive(&tensor, &x);
        let (y4, ops4) = sttsv_sym(&tensor, &x);
        let n = tensor.dim() as u64;
        prop_assert_eq!(ops3.ternary_mults, n * n * n);
        prop_assert_eq!(ops4.ternary_mults, n * n * (n + 1) / 2);
        for i in 0..x.len() {
            prop_assert!((y3[i] - y4[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn sttsv_is_linear_in_tensor(
        (a, b, x) in (3usize..10).prop_flat_map(|n| {
            (tensor_strategy(n), tensor_strategy(n), vector_strategy(n))
        }),
        alpha in -2.0f64..2.0,
    ) {
        let n = a.dim();
        let combo = SymTensor3::from_packed(
            n,
            a.packed().iter().zip(b.packed()).map(|(u, v)| alpha * u + v).collect(),
        );
        let (ya, _) = sttsv_sym(&a, &x);
        let (yb, _) = sttsv_sym(&b, &x);
        let (yc, _) = sttsv_sym(&combo, &x);
        for i in 0..n {
            prop_assert!((yc[i] - (alpha * ya[i] + yb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn sttsv_scales_quadratically_in_x(
        (tensor, x) in (3usize..10).prop_flat_map(|n| (tensor_strategy(n), vector_strategy(n))),
        scale in -3.0f64..3.0,
    ) {
        let scaled: Vec<f64> = x.iter().map(|&v| scale * v).collect();
        let (y, _) = sttsv_sym(&tensor, &x);
        let (ys, _) = sttsv_sym(&tensor, &scaled);
        for i in 0..x.len() {
            prop_assert!((ys[i] - scale * scale * y[i]).abs() < 1e-8 * (1.0 + y[i].abs()));
        }
    }

    #[test]
    fn packed_storage_permutation_invariance(
        entries in proptest::collection::vec((0usize..7, 0usize..7, 0usize..7, -5.0f64..5.0), 1..30)
    ) {
        let mut t = SymTensor3::zeros(7);
        for &(i, j, k, v) in &entries {
            t.set(i, j, k, v);
        }
        for &(i, j, k, _) in &entries {
            let base = t.get(i, j, k);
            prop_assert_eq!(t.get(i, k, j), base);
            prop_assert_eq!(t.get(j, i, k), base);
            prop_assert_eq!(t.get(j, k, i), base);
            prop_assert_eq!(t.get(k, i, j), base);
            prop_assert_eq!(t.get(k, j, i), base);
        }
    }
}

proptest! {
    // Parallel runs spawn threads, so use fewer cases.
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    #[test]
    fn parallel_equals_sequential_q2(
        scale in 1usize..3,
        seed in 0u64..1000,
        mode_idx in 0usize..3,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 5 * 6 * scale; // m·λ₁ multiples for q = 2.
        let part = TetraPartition::new(spherical(2), n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let tensor = symtensor_core::generate::random_symmetric(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mode = [Mode::Scheduled, Mode::AllToAllPadded, Mode::AllToAllSparse][mode_idx];
        let run = parallel_sttsv(&tensor, &part, &x, mode);
        let (y_ref, _) = sttsv_sym(&tensor, &x);
        for i in 0..n {
            prop_assert!((run.y[i] - y_ref[i]).abs() < 1e-9 * (1.0 + y_ref[i].abs()));
        }
    }

    #[test]
    fn sqs8_partition_valid_for_any_block_size(b in 1usize..6) {
        let part = TetraPartition::new(sqs8(), 8 * b).unwrap();
        part.verify().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn d_dimensional_kernels_agree(
        n in 2usize..6,
        d in 2usize..5,
        seed in 0u64..10_000,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use symtensor_core::dsym::{sttsv_d_naive, sttsv_d_sym, SymTensorD};
        let mut t = SymTensorD::zeros(n, d);
        let mut rng = StdRng::seed_from_u64(seed);
        for v in t.packed_mut() {
            *v = rng.gen::<f64>() - 0.5;
        }
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let (y_naive, _) = sttsv_d_naive(&t, &x);
        let (y_sym, _) = sttsv_d_sym(&t, &x);
        for i in 0..n {
            prop_assert!((y_naive[i] - y_sym[i]).abs() < 1e-9 * (1.0 + y_naive[i].abs()));
        }
    }

    #[test]
    fn loomis_whitney_and_symmetric_inequality_hold(
        raw_points in proptest::collection::btree_set((0i64..12, 0i64..12, 0i64..12), 1..40)
    ) {
        use symtensor_parallel::geometry::{
            loomis_whitney_holds, symmetric_inequality_holds, PointSet,
        };
        let v: PointSet = raw_points.into_iter().collect();
        prop_assert!(loomis_whitney_holds(&v));
        // Restrict to the strict lower tetrahedron for Lemma 4.2.
        let strict: PointSet = v.iter().copied().filter(|&(i, j, k)| i > j && j > k).collect();
        prop_assert!(symmetric_inequality_holds(&strict));
    }

    #[test]
    fn symv_parallel_matches_sequential_on_fano(seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use symtensor_core::symmat::{random_symmetric_matrix, symv_sym};
        use symtensor_parallel::triangle::{parallel_symv, TrianglePartition};
        let n = 7 * 3;
        let part = TrianglePartition::new(2, n).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let matrix = random_symmetric_matrix(n, &mut rng);
        let x: Vec<f64> = (0..n).map(|i| ((seed + i as u64) as f64 * 0.1).sin()).collect();
        let run = parallel_symv(&matrix, &part, &x);
        let (y_ref, _) = symv_sym(&matrix, &x);
        for i in 0..n {
            prop_assert!((run.y[i] - y_ref[i]).abs() < 1e-9 * (1.0 + y_ref[i].abs()));
        }
    }
}
