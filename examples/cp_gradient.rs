//! Symmetric CP decomposition by gradient descent (the paper's
//! Algorithm 2), whose bottleneck is one STTSV per factor column.
//!
//! Run with: `cargo run --release --example cp_gradient`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_core::cp::{cp_gradient, cp_objective};
use symtensor_core::generate::random_odeco;
use symtensor_core::ops::Matrix;

fn main() {
    let n = 40;
    let r = 3;
    let mut rng = StdRng::seed_from_u64(5);
    let odeco = random_odeco(n, r, &mut rng);

    // Start from a perturbation of the true factors.
    let mut x = Matrix::zeros(n, r);
    for (l, (lam, v)) in odeco.eigenvalues.iter().zip(&odeco.vectors).enumerate() {
        let s = lam.cbrt();
        let col: Vec<f64> = v.iter().map(|&vi| s * vi + 0.12 * (rng.gen::<f64>() - 0.5)).collect();
        x.set_col(l, &col);
    }

    println!("gradient descent on f(X) = (1/6)||A - Σ x_l∘x_l∘x_l||²  (n = {n}, r = {r})");
    let step = 0.08;
    let mut obj = cp_objective(&odeco.tensor, &x);
    println!("iter {:>3}: objective {obj:.6e}", 0);
    for it in 1..=60 {
        // Algorithm 2: r STTSV calls + small dense algebra.
        let g = cp_gradient(&odeco.tensor, &x);
        for row in 0..n {
            for col in 0..r {
                x.set(row, col, x.get(row, col) - step * g.get(row, col));
            }
        }
        obj = cp_objective(&odeco.tensor, &x);
        if it % 10 == 0 {
            println!("iter {:>3}: objective {obj:.6e}, |grad| {:.3e}", it, g.frobenius_norm());
        }
    }
    println!("final objective: {obj:.6e} (exact decomposition ⇒ 0)");
    assert!(obj < 1e-6, "descent must reach the planted decomposition");
    println!(
        "each iteration performed r = {r} STTSV computations — the kernel the \
         paper's parallel algorithm makes communication-optimal"
    );
}
