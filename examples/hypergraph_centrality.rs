//! Hypergraph eigenvector centrality via STTSV — one of the application
//! domains motivating fast symmetric tensor-times-same-vector kernels
//! (cf. the Shivakumar et al. citation in the paper's introduction).
//!
//! The ℤ-eigenvector centrality of a 3-uniform hypergraph is the dominant
//! eigenpair of its symmetric adjacency tensor; each power iteration is one
//! STTSV, so the communication-optimal kernel applies directly.
//!
//! Run with: `cargo run --release --example hypergraph_centrality`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::{hypergraph_adjacency, random_hypergraph};
use symtensor_core::hopm::{shifted_hopm, HopmOptions};
use symtensor_parallel::hopm::parallel_shifted_hopm;
use symtensor_parallel::{Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let n = 60;
    let mut rng = StdRng::seed_from_u64(17);
    // A hypergraph with a planted dense core: vertices 0..6 participate in
    // every core triple, plus random background edges.
    let mut edges = Vec::new();
    for a in 0..6usize {
        for b in a + 1..6 {
            for c in b + 1..6 {
                edges.push([a, b, c]);
            }
        }
    }
    let background = random_hypergraph(n, 160, &mut rng);
    for e in background {
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    let tensor = hypergraph_adjacency(n, &edges);
    println!("hypergraph: {n} vertices, {} hyperedges (dense core on 0..6)", edges.len());

    // Centrality = dominant Z-eigenvector with nonnegative entries;
    // a positive start plus a positivity-preserving shift stays in the
    // nonnegative cone.
    let x0 = vec![1.0; n];
    let opts = HopmOptions { tol: 1e-12, max_iters: 5000 };
    let alpha = 1.0;
    let seq = shifted_hopm(&tensor, &x0, alpha, opts);

    // Same computation with the distributed kernel (P = 10).
    let part = TetraPartition::new(spherical(2), n).expect("partition");
    let (par, report) = parallel_shifted_hopm(&tensor, &part, &x0, alpha, opts, Mode::Scheduled);
    assert!((seq.lambda - par.lambda).abs() < 1e-8);

    let mut ranked: Vec<(usize, f64)> = par.x.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "centrality eigenvalue λ = {:.6} ({} iterations, P = {})",
        par.lambda,
        par.iters,
        part.num_procs()
    );
    println!("top 8 vertices by centrality:");
    for &(v, c) in ranked.iter().take(8) {
        println!("  vertex {v:>3}: {c:.5}");
    }
    // The planted core must dominate the ranking.
    let top6: Vec<usize> = ranked.iter().take(6).map(|&(v, _)| v).collect();
    for v in 0..6 {
        assert!(top6.contains(&v), "core vertex {v} must rank in the top 6");
    }
    println!(
        "core recovered; total communication: max {} words on any rank",
        report.bandwidth_cost()
    );
}
