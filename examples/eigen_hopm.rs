//! ℤ-eigenpairs of a symmetric tensor via the higher-order power method
//! (the paper's Algorithm 1), both sequentially and with the distributed
//! communication-optimal STTSV kernel inside.
//!
//! Run with: `cargo run --release --example eigen_hopm`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_odeco;
use symtensor_core::hopm::{hopm, HopmOptions};
use symtensor_core::ops::dot;
use symtensor_parallel::hopm::parallel_hopm;
use symtensor_parallel::{Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    let n = 120;
    let mut rng = StdRng::seed_from_u64(11);
    // An odeco tensor has known eigenpairs: A = Σ λ_ℓ v_ℓ∘v_ℓ∘v_ℓ.
    let odeco = random_odeco(n, 6, &mut rng);
    println!(
        "planted eigenvalues: {:?}",
        odeco.eigenvalues.iter().map(|l| (l * 1e4).round() / 1e4).collect::<Vec<_>>()
    );

    let mut x0 = odeco.vectors[0].clone();
    x0[1] += 0.08; // generic start biased into the dominant basin

    let opts = HopmOptions { tol: 1e-12, max_iters: 1000 };
    let seq = hopm(&odeco.tensor, &x0, opts);
    println!(
        "sequential HOPM:  lambda = {:.10}, {} iterations, residual {:.2e}",
        seq.lambda, seq.iters, seq.residual
    );

    // Distributed run: q = 2, P = 10 processors, vectors stay sharded
    // between iterations.
    let part = TetraPartition::new(spherical(2), n).expect("partition");
    let (par, report) = parallel_hopm(&odeco.tensor, &part, &x0, opts, Mode::Scheduled);
    println!(
        "parallel HOPM:    lambda = {:.10}, {} iterations, residual {:.2e} (P = {})",
        par.lambda,
        par.iters,
        par.residual,
        part.num_procs()
    );
    println!(
        "alignment with planted dominant eigenvector: {:.12}",
        dot(&par.x, &odeco.vectors[0]).abs()
    );
    println!(
        "total communication: max {} words on any rank over the whole solve",
        report.bandwidth_cost()
    );
    assert!((par.lambda - seq.lambda).abs() < 1e-8);
}
