//! The d-dimensional generalization (the paper's Section 8 future work):
//! packed order-d symmetric tensors, the generalized STTSV kernel, and the
//! d-dimensional communication lower bound.
//!
//! Run with: `cargo run --release --example d_dimensional`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symtensor_core::dsym::{binomial, lower_bound_words_d, sttsv_d_naive, sttsv_d_sym, SymTensorD};

fn main() {
    let n = 14;
    let mut rng = StdRng::seed_from_u64(8);
    println!("d-dimensional symmetric STTSV at n = {n}:");
    println!(
        "{:>3} | {:>10} {:>10} {:>7} | {:>12} {:>12} {:>8}",
        "d", "naive ops", "sym ops", "ratio", "dense words", "packed", "saving"
    );
    for d in [2usize, 3, 4, 5] {
        let mut t = SymTensorD::zeros(n, d);
        for v in t.packed_mut() {
            *v = rng.gen::<f64>() - 0.5;
        }
        let x: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).recip()).collect();
        let (y_naive, ops_naive) = sttsv_d_naive(&t, &x);
        let (y_sym, ops_sym) = sttsv_d_sym(&t, &x);
        let max_diff =
            y_naive.iter().zip(&y_sym).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 1e-9, "kernels must agree (got {max_diff:.2e})");
        let dense = (n as u64).pow(d as u32);
        let packed = binomial(n + d - 1, d);
        println!(
            "{d:>3} | {:>10} {:>10} {:>7.2} | {dense:>12} {packed:>12} {:>7.1}x",
            ops_naive.to_string(),
            ops_sym,
            ops_naive as f64 / ops_sym as f64,
            dense as f64 / packed as f64
        );
    }
    println!();
    println!("d-dimensional lower bound 2(d!·C(n,d)/P)^(1/d) − 2n/P at n = 1000, P = 512:");
    for d in [3usize, 4, 5] {
        println!("  d = {d}: {:>10.1} words", lower_bound_words_d(1000, d, 512));
    }
    println!("(the paper notes the bound extends to any d; partitions need Steiner");
    println!(" systems with s = d which are only known as infinite families for d ≤ 3)");
}
