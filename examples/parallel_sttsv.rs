//! Communication-optimal parallel STTSV (the paper's Algorithm 5) on the
//! simulated P-processor machine, with measured communication compared to
//! the Theorem 5.2 lower bound and to the All-to-All variant.
//!
//! Run with: `cargo run --release --example parallel_sttsv`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::sttsv_sym;
use symtensor_parallel::{bounds, parallel_sttsv, Mode, TetraPartition};
use symtensor_steiner::spherical;

fn main() {
    // q = 3 gives the paper's flagship configuration: m = 10 row blocks,
    // P = q(q²+1) = 30 processors (Tables 1 and 2).
    let q = 3usize;
    let n = 240;
    let system = spherical(q as u64);
    system.verify().expect("Steiner system");
    let part = TetraPartition::new(system, n).expect("partition");
    println!(
        "P = {} processors, n = {n}, row blocks m = {}, block size b = {}",
        part.num_procs(),
        part.num_row_blocks(),
        part.block_size()
    );

    let mut rng = StdRng::seed_from_u64(42);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();

    // Reference result.
    let (y_ref, _) = sttsv_sym(&tensor, &x);

    for (label, mode) in [
        ("scheduled point-to-point", Mode::Scheduled),
        ("padded All-to-All       ", Mode::AllToAllPadded),
        ("sparse All-to-All       ", Mode::AllToAllSparse),
    ] {
        let run = parallel_sttsv(&tensor, &part, &x, mode);
        let max_err = run.y.iter().zip(&y_ref).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
        println!(
            "{label}: max words/rank = {:>5}, rounds = {:>3}, max |err| = {max_err:.2e}",
            run.report.bandwidth_cost(),
            run.report.max_rounds(),
        );
    }

    let lb = bounds::lower_bound_words(n, part.num_procs());
    println!(
        "Theorem 5.2 lower bound: {lb:.1} words; scheduled algorithm: {} words \
         (ratio {:.3}, leading terms match exactly)",
        bounds::scheduled_words_total(n, q),
        bounds::scheduled_words_total(n, q) as f64 / lb
    );
    println!(
        "tensor data communicated: 0 words (owner-compute rule — only the two \
         vectors move)"
    );
}
