//! Quickstart: packed symmetric tensors and sequential STTSV.
//!
//! Builds a random symmetric 3-tensor, runs the naive (Algorithm 3) and
//! symmetry-exploiting (Algorithm 4) STTSV kernels, and shows the ~2×
//! operation saving the paper's introduction describes.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::{sttsv_naive, sttsv_sym};
use symtensor_core::storage::SymTensor3;

fn main() {
    let n = 200;
    let mut rng = StdRng::seed_from_u64(7);
    let tensor = random_symmetric(n, &mut rng);
    println!(
        "symmetric {n}x{n}x{n} tensor: {} packed words instead of {} dense ({}x saving)",
        tensor.packed_len(),
        n * n * n,
        n * n * n / tensor.packed_len()
    );

    let x: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).recip()).collect();

    let t0 = std::time::Instant::now();
    let (y_naive, ops_naive) = sttsv_naive(&tensor, &x);
    let naive_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let (y_sym, ops_sym) = sttsv_sym(&tensor, &x);
    let sym_time = t1.elapsed();

    let max_diff = y_naive.iter().zip(&y_sym).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!(
        "Algorithm 3 (naive):     {:>12} ternary mults in {naive_time:?}",
        ops_naive.ternary_mults
    );
    println!(
        "Algorithm 4 (symmetric): {:>12} ternary mults in {sym_time:?}",
        ops_sym.ternary_mults
    );
    println!(
        "work ratio: {:.3} (paper: n³ vs n²(n+1)/2 ≈ 2x); max |Δy| = {max_diff:.2e}",
        ops_naive.ternary_mults as f64 / ops_sym.ternary_mults as f64
    );

    // A tiny worked example: the all-ones tensor gives y_i = (Σ x)².
    let mut ones = SymTensor3::zeros(4);
    for slot in ones.packed_mut() {
        *slot = 1.0;
    }
    let (y, _) = sttsv_sym(&ones, &[1.0, 2.0, 3.0, 4.0]);
    println!("all-ones tensor sanity: y = {y:?} (expect all 100 = (1+2+3+4)²)");
}
