//! Sequential memory-hierarchy behaviour of STTSV: tetrahedral blocking vs
//! the textbook loop order, measured on the LRU cache simulator and on the
//! real (wall-clock) blocked kernel.
//!
//! Run with: `cargo run --release --example sequential_io`

use rand::rngs::StdRng;
use rand::SeedableRng;
use symtensor_cachesim::{sttsv_io_blocked, sttsv_io_rowmajor};
use symtensor_core::generate::random_symmetric;
use symtensor_core::seq::{sttsv_sym, sttsv_sym_blocked};

fn main() {
    // Part 1: simulated cache traffic.
    let n = 96;
    let b = 8;
    println!("simulated LRU cache, n = {n}, block size b = {b}");
    println!("{:>8} | {:>12} {:>12} {:>7}", "cache", "row-major", "blocked", "ratio");
    for cache_words in [64usize, 128, 192, 512, 4096] {
        let row = sttsv_io_rowmajor(n, cache_words, 1);
        let blk = sttsv_io_blocked(n, b, cache_words, 1);
        println!(
            "{cache_words:>8} | {:>12} {:>12} {:>7.2}",
            row.vector_misses,
            blk.vector_misses,
            row.vector_misses as f64 / blk.vector_misses.max(1) as f64
        );
    }
    println!("(vector misses only; packed tensor traffic is compulsory in both orders)");
    println!();

    // Part 2: the real blocked kernel computes the same thing.
    let n = 240;
    let mut rng = StdRng::seed_from_u64(3);
    let tensor = random_symmetric(n, &mut rng);
    let x: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).recip()).collect();
    let t0 = std::time::Instant::now();
    let (y_row, ops_row) = sttsv_sym(&tensor, &x);
    let t_row = t0.elapsed();
    let t1 = std::time::Instant::now();
    let (y_blk, ops_blk) = sttsv_sym_blocked(&tensor, &x, 24);
    let t_blk = t1.elapsed();
    let max_diff = y_row.iter().zip(&y_blk).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert_eq!(ops_row.ternary_mults, ops_blk.ternary_mults);
    println!("real kernels at n = {n}: row-major {t_row:?}, blocked(24) {t_blk:?}");
    println!("identical work ({} ternary mults), max |Δy| = {max_diff:.2e}", ops_row.ternary_mults);
}
